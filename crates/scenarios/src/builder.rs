//! Unified scenario assembly: one builder for sites, links, NSD farms,
//! workloads and fault plans.
//!
//! The paper's testbeds ([`crate::sc02`] … [`crate::production`]) each
//! assemble a [`WorldBuilder`] by hand; this module is the common shape
//! those assemblies share, factored into an API:
//!
//! ```text
//! ScenarioBuilder::new(seed)
//!     .site("sdsc")               — a machine-room switch
//!     .site("ncsa")
//!     .wan("sdsc", "ncsa", 10 Gb/s, 30 ms, "teragrid")
//!     .nsd_farm("sdsc", NsdFarm::new("gpfs-wan", 64))
//!     .clients("ncsa", 8, GbE, 100 µs)
//!     .workload(Workload::stream(...))
//!     .faults(FaultPlan::new().server_crash(...))
//!     .run(horizon)
//! ```
//!
//! [`ScenarioBuilder::run`] wires everything into the event engine —
//! monitoring first, then the fault plan, then the workloads — and returns
//! a [`ScenarioRun`] carrying the monitored series, the world's
//! [`RecoveryLog`], per-workload outcomes, and the simulator itself so
//! tests can keep driving (read-back verification, fsck) after the run.

use crate::common::{NSD_SERVER_EFF, TCP_EFF};
use bytes::Bytes;
use gfs::fscore::{DataMode, FsConfig};
use gfs::session::Session;
use gfs::stream::{gfs_stream, StreamDir};
use gfs::types::{FsError, FsId, Handle, OpenFlags, Owner};
use gfs::world::{FsParams, GfsWorld, NsdBacking, WorldBuilder};
use gfs::{inject, FaultPlan, RecoveryLog};
use gfs_auth::handshake::AccessMode;
use simcore::{Bandwidth, Sim, SimDuration, SimTime, TimeSeries};
use simnet::{Network, NodeId};
use simsan::ArraySpec;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// An NSD server farm: `servers` distinct server nodes (named
/// `"{device}-srv{i}"`, each on its own NIC link `"{device}-srv{i}"`)
/// serving one filesystem. Distinct nodes — unlike the aggregated
/// `"nsd-farm"` pseudo-node of the figure-scale scenarios — are what fault
/// plans need: you can crash exactly one of 64.
#[derive(Clone, Debug)]
pub struct NsdFarm {
    /// Device (filesystem) name.
    pub device: String,
    /// Number of NSD server nodes.
    pub servers: u32,
    /// Per-server NIC goodput (GbE × TCP × daemon efficiency by default).
    pub server_nic: Bandwidth,
    /// Filesystem block size.
    pub block_size: u64,
    /// NSD (logical disk) count; defaults to one per server.
    pub nsd_count: u32,
    /// Blocks per NSD.
    pub nsd_blocks: u64,
    /// Per-server media service rate (Ideal backing).
    pub media_rate: Bandwidth,
    /// Per-request media latency.
    pub media_latency: SimDuration,
    /// Whether block payloads are stored (byte fidelity) or synthetic.
    pub data_mode: DataMode,
    /// When set, NSDs are backed by a detailed [`simsan`] array (NSD `i` →
    /// RAID set `i % raid_sets`) instead of the Ideal queue — required for
    /// [`gfs::FaultKind::DiskFail`] experiments.
    pub array: Option<ArraySpec>,
    /// Cooperating namespace manager instances (subtree-sharded). Shard 0
    /// lives on the farm's first server; shards 1.. are homed round-robin
    /// across the rest.
    pub managers: u32,
}

impl NsdFarm {
    /// A farm of `servers` GbE servers serving device `device`, with
    /// generous ideal media behind each server.
    pub fn new(device: impl Into<String>, servers: u32) -> Self {
        assert!(servers > 0, "farm needs at least one server");
        NsdFarm {
            device: device.into(),
            servers,
            server_nic: Bandwidth::gbit(1.0).scaled(TCP_EFF).scaled(NSD_SERVER_EFF),
            block_size: 1 << 20,
            nsd_count: servers,
            nsd_blocks: 1 << 16,
            media_rate: Bandwidth::gbyte(1.0),
            media_latency: SimDuration::from_micros(200),
            data_mode: DataMode::Synthetic,
            array: None,
            managers: 1,
        }
    }

    /// Store block payloads — needed for end-to-end data verification.
    pub fn stored_data(mut self) -> Self {
        self.data_mode = DataMode::Stored;
        self
    }

    /// Set the filesystem block size.
    pub fn block_size(mut self, bytes: u64) -> Self {
        self.block_size = bytes;
        self
    }

    /// Set the per-server NIC goodput.
    pub fn server_nic(mut self, nic: Bandwidth) -> Self {
        self.server_nic = nic;
        self
    }

    /// Back the NSDs with a detailed array model (enables spindle-failure
    /// fault injection).
    pub fn array_backed(mut self, spec: ArraySpec) -> Self {
        self.array = Some(spec);
        self
    }

    /// Partition the namespace across `m` cooperating manager instances.
    pub fn managers(mut self, m: u32) -> Self {
        assert!(m > 0, "need at least one namespace manager");
        self.managers = m;
        self
    }

    /// The name of server node `i`, as a fault plan would address it.
    pub fn server_name(&self, i: u32) -> String {
        format!("{}-srv{}", self.device, i)
    }
}

/// One driven workload. Workloads are addressed by [`Session`] — the
/// redesigned client surface — never by raw `ClientId`.
#[derive(Clone, Debug)]
pub enum Workload {
    /// Flow-level stream (the figure-scale path): `bytes` across every
    /// live NSD connection of `fs`.
    Stream {
        /// Streaming session.
        session: Session,
        /// Target filesystem.
        fs: FsId,
        /// Total bytes.
        bytes: u64,
        /// Direction.
        dir: StreamDir,
        /// Start time.
        start: SimTime,
        /// Monitoring tag.
        tag: u32,
    },
    /// A phase sequence from the [`workloads`] crate, run through the
    /// streaming path via [`crate::driver::run_streamed`] (compute gaps
    /// honoured, reads/writes as flow-level streams).
    Phased {
        /// Driving session.
        session: Session,
        /// Target filesystem.
        fs: FsId,
        /// The phase list.
        workload: workloads::Workload,
        /// Monitoring tag.
        tag: u32,
        /// Start time.
        start: SimTime,
    },
    /// Per-block operation path: mount, create `path`, write `bytes` in
    /// `chunk`-sized calls of deterministic [`pattern_bytes`] data, close
    /// (which flushes). Exercises tokens, caching, and the NSD
    /// timeout/retry/failover machinery.
    FileWrite {
        /// Writing session.
        session: Session,
        /// Device to mount.
        device: String,
        /// File path.
        path: String,
        /// Total bytes.
        bytes: u64,
        /// Bytes per `write` call.
        chunk: u64,
        /// Start time.
        start: SimTime,
    },
    /// Per-block sequential read of an existing file in `chunk`-sized
    /// calls (pair with an earlier [`Workload::FileWrite`]).
    FileRead {
        /// Reading session.
        session: Session,
        /// Device to mount.
        device: String,
        /// File path.
        path: String,
        /// Total bytes.
        bytes: u64,
        /// Bytes per `read` call.
        chunk: u64,
        /// Start time.
        start: SimTime,
    },
}

impl Workload {
    /// Convenience: a read/write stream starting at t=0.
    pub fn stream(session: Session, fs: FsId, bytes: u64, dir: StreamDir, tag: u32) -> Self {
        Workload::Stream {
            session,
            fs,
            bytes,
            dir,
            start: SimTime::from_nanos(0),
            tag,
        }
    }

    /// Convenience: a phased workload starting at t=0.
    pub fn phased(session: Session, fs: FsId, workload: workloads::Workload, tag: u32) -> Self {
        Workload::Phased {
            session,
            fs,
            workload,
            tag,
            start: SimTime::from_nanos(0),
        }
    }

    /// Convenience: a chunked file write starting at t=0.
    pub fn file_write(
        session: Session,
        device: impl Into<String>,
        path: impl Into<String>,
        bytes: u64,
        chunk: u64,
    ) -> Self {
        Workload::FileWrite {
            session,
            device: device.into(),
            path: path.into(),
            bytes,
            chunk,
            start: SimTime::from_nanos(0),
        }
    }

    /// Convenience: a chunked file read starting at t=0.
    pub fn file_read(
        session: Session,
        device: impl Into<String>,
        path: impl Into<String>,
        bytes: u64,
        chunk: u64,
    ) -> Self {
        Workload::FileRead {
            session,
            device: device.into(),
            path: path.into(),
            bytes,
            chunk,
            start: SimTime::from_nanos(0),
        }
    }

    /// Shift the workload's start time.
    pub fn starting_at(mut self, t: SimTime) -> Self {
        match &mut self {
            Workload::Stream { start, .. }
            | Workload::Phased { start, .. }
            | Workload::FileWrite { start, .. }
            | Workload::FileRead { start, .. } => *start = t,
        }
        self
    }
}

/// The deterministic byte at file offset `off` in [`Workload::FileWrite`]
/// data (a position-dependent pattern, so torn or misplaced blocks are
/// detected on read-back).
pub fn pattern_byte(off: u64) -> u8 {
    (off.wrapping_mul(131).wrapping_add(off >> 8)) as u8
}

/// `len` pattern bytes starting at file offset `off`.
///
/// Within one 256-byte segment `off >> 8` is constant, so the pattern is a
/// fixed 256-entry table shifted by the segment index — each segment is a
/// table add the compiler vectorizes, instead of a per-byte multiply.
/// Produces exactly the same bytes as mapping [`pattern_byte`] over the
/// range (the randomized test below pins that equivalence).
pub fn pattern_bytes(off: u64, len: u64) -> Bytes {
    const TABLE: [u8; 256] = {
        let mut t = [0u8; 256];
        let mut i = 0usize;
        while i < 256 {
            t[i] = (i as u64).wrapping_mul(131) as u8;
            i += 1;
        }
        t
    };
    let mut out = vec![0u8; len as usize];
    let mut pos = 0usize;
    let mut cur = off;
    while pos < len as usize {
        let idx = (cur & 0xff) as usize;
        let n = (256 - idx).min(len as usize - pos);
        let shift = (cur >> 8) as u8;
        for (o, t) in out[pos..pos + n].iter_mut().zip(&TABLE[idx..idx + n]) {
            *o = t.wrapping_add(shift);
        }
        pos += n;
        cur += n as u64;
    }
    Bytes::from(out)
}

/// Scenario assembly: sites, links, farms, clients, workloads, faults.
pub struct ScenarioBuilder {
    b: WorldBuilder,
    cluster: gfs::types::ClusterId,
    sites: BTreeMap<String, NodeId>,
    workloads: Vec<Workload>,
    plan: FaultPlan,
    sample: Option<SimDuration>,
    client_seq: u32,
}

/// Everything a finished scenario run yields. The simulator and world are
/// returned live so tests can fsck, read files back, or extend the run.
pub struct ScenarioRun {
    /// The event engine, drained.
    pub sim: Sim<GfsWorld>,
    /// The world after the run.
    pub world: GfsWorld,
    /// Monitored per-link series (empty unless `sample_every` was set).
    pub series: Vec<TimeSeries>,
    /// The world's recovery log, taken out for convenience.
    pub recovery: RecoveryLog,
    /// Workloads that completed successfully.
    pub completed: usize,
    /// `(workload index, error)` for workloads that failed.
    pub errors: Vec<(usize, FsError)>,
    /// Completion time of the last workload to finish.
    pub finish: SimTime,
}

/// Aggregated client data-path counters for one finished run: page-pool
/// behaviour plus NSD request coalescing — the metrics the perf harness
/// records alongside wall-clock so the trajectory captures data-path
/// behaviour, not just runtime.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DataPathStats {
    /// Page-pool hits summed over all clients.
    pub pool_hits: u64,
    /// Page-pool misses summed over all clients.
    pub pool_misses: u64,
    /// Page-pool evictions summed over all clients.
    pub pool_evictions: u64,
    /// Streaming transfers that bypassed the page pool entirely (flow-level
    /// bulk streams never probe it — without this counter a streaming run
    /// reads as "0% hit rate" when the pool was simply not on the path).
    pub pool_bypass: u64,
    /// Bytes moved by pool-bypassing streams.
    pub pool_bypass_bytes: u64,
    /// NSD wire requests issued (every attempt, including retries).
    pub nsd_requests: u64,
    /// Requests that carried more than one block (scatter-gather runs).
    pub nsd_coalesced: u64,
    /// Total blocks moved by NSD requests.
    pub nsd_blocks: u64,
    /// Total bytes moved by NSD requests.
    pub nsd_bytes: u64,
}

impl DataPathStats {
    /// Page-pool hit rate in `[0, 1]` (0 when the pool was never probed).
    pub fn hit_rate(&self) -> f64 {
        let probes = self.pool_hits + self.pool_misses;
        if probes == 0 {
            0.0
        } else {
            self.pool_hits as f64 / probes as f64
        }
    }

    /// Mean bytes per NSD request (0 when no requests were issued).
    pub fn mean_request_bytes(&self) -> f64 {
        if self.nsd_requests == 0 {
            0.0
        } else {
            self.nsd_bytes as f64 / self.nsd_requests as f64
        }
    }

    /// Mean bytes per pool-bypassing bulk stream (0 when none ran). The
    /// figure-scale scenarios move their terabytes through these streams,
    /// not through per-block NSD requests — reporting only
    /// [`Self::mean_request_bytes`] made those runs read as "0 bytes
    /// moved".
    pub fn mean_bypass_bytes(&self) -> f64 {
        if self.pool_bypass == 0 {
            0.0
        } else {
            self.pool_bypass_bytes as f64 / self.pool_bypass as f64
        }
    }

    /// Counter-wise sum (for scenarios that run several worlds).
    pub fn merged(&self, other: &DataPathStats) -> DataPathStats {
        DataPathStats {
            pool_hits: self.pool_hits + other.pool_hits,
            pool_misses: self.pool_misses + other.pool_misses,
            pool_evictions: self.pool_evictions + other.pool_evictions,
            pool_bypass: self.pool_bypass + other.pool_bypass,
            pool_bypass_bytes: self.pool_bypass_bytes + other.pool_bypass_bytes,
            nsd_requests: self.nsd_requests + other.nsd_requests,
            nsd_coalesced: self.nsd_coalesced + other.nsd_coalesced,
            nsd_blocks: self.nsd_blocks + other.nsd_blocks,
            nsd_bytes: self.nsd_bytes + other.nsd_bytes,
        }
    }
}

impl ScenarioRun {
    /// Data-path counters accumulated over the run.
    pub fn data_path_stats(&self) -> DataPathStats {
        data_path_stats_of(&self.world)
    }
}

/// Data-path counters of a world (summed over its clients).
pub fn data_path_stats_of(w: &GfsWorld) -> DataPathStats {
    let mut s = DataPathStats {
        pool_bypass: w.nsd_stats.bypass_transfers,
        pool_bypass_bytes: w.nsd_stats.bypass_bytes,
        nsd_requests: w.nsd_stats.requests,
        nsd_coalesced: w.nsd_stats.coalesced,
        nsd_blocks: w.nsd_stats.blocks,
        nsd_bytes: w.nsd_stats.bytes,
        ..DataPathStats::default()
    };
    for c in &w.clients {
        s.pool_hits += c.pool.hits;
        s.pool_misses += c.pool.misses;
        s.pool_evictions += c.pool.evictions;
    }
    s
}

#[derive(Default)]
struct RunState {
    completed: usize,
    errors: Vec<(usize, FsError)>,
    finish: SimTime,
}

impl ScenarioBuilder {
    /// Start a scenario with a global determinism seed.
    pub fn new(seed: u64) -> Self {
        let mut b = WorldBuilder::new(seed);
        b.key_bits(384);
        let cluster = b.cluster("scenario");
        ScenarioBuilder {
            b,
            cluster,
            sites: BTreeMap::new(),
            workloads: Vec::new(),
            plan: FaultPlan::new(),
            sample: None,
            client_seq: 0,
        }
    }

    /// A site: one switch node named `name`, created on first mention.
    pub fn site(&mut self, name: &str) -> NodeId {
        if let Some(&n) = self.sites.get(name) {
            return n;
        }
        let n = self.b.topo().node(name);
        self.sites.insert(name.to_string(), n);
        n
    }

    /// A raw duplex link between two sites at exactly `capacity`.
    pub fn link(
        &mut self,
        a: &str,
        z: &str,
        capacity: Bandwidth,
        one_way: SimDuration,
        name: &str,
    ) -> &mut Self {
        let (an, zn) = (self.site(a), self.site(z));
        self.b.topo().duplex_link(an, zn, capacity, one_way, name);
        self
    }

    /// A WAN path between two sites: `gross` line rate scaled by TCP
    /// efficiency.
    pub fn wan(
        &mut self,
        a: &str,
        z: &str,
        gross: Bandwidth,
        one_way: SimDuration,
        name: &str,
    ) -> &mut Self {
        self.link(a, z, gross.scaled(TCP_EFF), one_way, name)
    }

    /// Attach an NSD farm to a site; returns the filesystem. Server `i` is
    /// node `"{device}-srv{i}"`, reachable by that name in fault plans.
    pub fn nsd_farm(&mut self, site: &str, farm: NsdFarm) -> FsId {
        let sw = self.site(site);
        let mut servers = Vec::with_capacity(farm.servers as usize);
        for i in 0..farm.servers {
            let name = farm.server_name(i);
            let n = self.b.topo().node(name.clone());
            self.b
                .topo()
                .duplex_link(n, sw, farm.server_nic, SimDuration::from_micros(50), name);
            servers.push(n);
        }
        let backing = match &farm.array {
            Some(spec) => {
                let idx = self.b.array(spec.clone());
                (0..farm.nsd_count)
                    .map(|i| NsdBacking::Array {
                        array: idx,
                        set: i % spec.raid_sets,
                    })
                    .collect()
            }
            None => vec![NsdBacking::Ideal {
                rate: farm.media_rate.bytes_per_sec(),
                latency: farm.media_latency,
            }],
        };
        self.b.filesystem(
            self.cluster,
            FsParams {
                config: FsConfig {
                    name: farm.device.clone(),
                    block_size: farm.block_size,
                    nsd_blocks: farm.nsd_blocks,
                    nsd_count: farm.nsd_count,
                    data_mode: farm.data_mode,
                },
                manager: servers[0],
                managers: farm.managers,
                nsd_servers: servers,
                storage_nodes: vec![],
                backing,
                exported: true,
            },
        )
    }

    /// `count` client nodes at a site, each on its own `nic`-rate link
    /// (`"nic-{site}-{i}"`), with `pool_pages` pages of block cache.
    /// Returns one [`Session`] per node: a 1:1 session over a dedicated
    /// mount context, byte-identical to the pre-session per-client paths.
    pub fn clients(
        &mut self,
        site: &str,
        count: u32,
        nic: Bandwidth,
        delay: SimDuration,
        pool_pages: usize,
    ) -> Vec<Session> {
        let sw = self.site(site);
        let mut out = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let i = self.client_seq;
            self.client_seq += 1;
            let n = self.b.topo().node(format!("c-{site}-{i}"));
            self.b
                .topo()
                .duplex_link(n, sw, nic, delay, format!("nic-{site}-{i}"));
            let c = self.b.client(self.cluster, n, pool_pages);
            out.push(Session(self.b.session(c)));
        }
        out
    }

    /// `count` flyweight sessions at a site, packed `per_mount` to a shared
    /// mount context (node `"mc-{site}-{i}"`, GbE NIC, 64-page pool).
    /// Sessions on a shared context batch same-instant metadata RPCs into
    /// fan-in envelopes — this is how a site hosts 100k simulated users.
    pub fn sessions(&mut self, site: &str, count: u32, per_mount: u32) -> Vec<Session> {
        assert!(per_mount > 0, "sessions need a positive per_mount");
        let sw = self.site(site);
        let mut out = Vec::with_capacity(count as usize);
        let mut ctx = None;
        for j in 0..count {
            if j % per_mount == 0 {
                let i = self.client_seq;
                self.client_seq += 1;
                let n = self.b.topo().node(format!("mc-{site}-{i}"));
                self.b.topo().duplex_link(
                    n,
                    sw,
                    Bandwidth::gbit(1.0),
                    SimDuration::from_micros(100),
                    format!("nic-mc-{site}-{i}"),
                );
                ctx = Some(self.b.mount_context(self.cluster, n, 64));
            }
            out.push(Session(self.b.session(ctx.expect("context exists"))));
        }
        out
    }

    /// Queue a workload.
    pub fn workload(&mut self, wl: Workload) -> &mut Self {
        self.workloads.push(wl);
        self
    }

    /// Install the fault plan (replaces any previous one).
    pub fn faults(&mut self, plan: FaultPlan) -> &mut Self {
        self.plan = plan;
        self
    }

    /// Record per-link rate series on this sampling period.
    pub fn sample_every(&mut self, dt: SimDuration) -> &mut Self {
        self.sample = Some(dt);
        self
    }

    /// Escape hatch to the underlying [`WorldBuilder`] for anything the
    /// high-level API doesn't cover.
    pub fn world_builder(&mut self) -> &mut WorldBuilder {
        &mut self.b
    }

    /// Build the world, inject the fault plan, launch every workload, and
    /// run the event loop until it drains or `horizon` is reached. The
    /// horizon is a hard stop: it bounds the monitoring series and also the
    /// self-rescheduling sampler, so pick it past the expected finish.
    pub fn run(self, horizon: SimTime) -> ScenarioRun {
        let ScenarioBuilder {
            b,
            workloads,
            plan,
            sample,
            ..
        } = self;
        let (mut sim, mut w) = b.build();
        if let Some(dt) = sample {
            Network::enable_monitoring(&mut sim, &mut w, dt);
        }
        inject(&mut sim, &plan);

        let state = Rc::new(RefCell::new(RunState::default()));
        for (idx, wl) in workloads.into_iter().enumerate() {
            let state = state.clone();
            let settle = move |sim: &mut Sim<GfsWorld>,
                               _w: &mut GfsWorld,
                               r: Result<(), FsError>| {
                let mut st = state.borrow_mut();
                match r {
                    Ok(()) => st.completed += 1,
                    Err(e) => st.errors.push((idx, e)),
                }
                st.finish = st.finish.max(sim.now());
            };
            match wl {
                Workload::Stream {
                    session,
                    fs,
                    bytes,
                    dir,
                    start,
                    tag,
                } => {
                    sim.at(start, move |sim, w| {
                        // Flow-level streams ride the session's shared
                        // mount context directly.
                        let ctx = session.ctx(w);
                        gfs_stream(sim, w, ctx, fs, bytes, dir, tag, move |sim, w| {
                            settle(sim, w, Ok(()))
                        });
                    });
                }
                Workload::Phased {
                    session,
                    fs,
                    workload,
                    tag,
                    start,
                } => {
                    sim.at(start, move |sim, w| {
                        let ctx = session.ctx(w);
                        crate::driver::run_streamed(
                            sim,
                            w,
                            ctx,
                            fs,
                            workload,
                            tag,
                            move |sim, w, _stats| settle(sim, w, Ok(())),
                        );
                    });
                }
                Workload::FileWrite {
                    session,
                    device,
                    path,
                    bytes,
                    chunk,
                    start,
                } => {
                    sim.at(start, move |sim, w| {
                        run_file_write(sim, w, session, device, path, bytes, chunk, Box::new(settle));
                    });
                }
                Workload::FileRead {
                    session,
                    device,
                    path,
                    bytes,
                    chunk,
                    start,
                } => {
                    sim.at(start, move |sim, w| {
                        run_file_read(sim, w, session, device, path, bytes, chunk, Box::new(settle));
                    });
                }
            }
        }
        sim.set_horizon(horizon);
        sim.run(&mut w);

        let series = w.net.finish_monitoring(horizon);
        let recovery = std::mem::take(&mut w.recovery);
        // Borrow rather than unwrap: a workload stalled forever (e.g. on a
        // permanently partitioned path) still holds its callback, and shows
        // up as completed + errors < workloads launched.
        let st = state.borrow();
        ScenarioRun {
            series,
            recovery,
            completed: st.completed,
            errors: st.errors.clone(),
            finish: st.finish,
            sim,
            world: w,
        }
    }
}

type DoneCb = Box<dyn FnOnce(&mut Sim<GfsWorld>, &mut GfsWorld, Result<(), FsError>)>;

/// Mount → open → chunked pattern writes → close, all through the session
/// facade.
fn run_file_write(
    sim: &mut Sim<GfsWorld>,
    w: &mut GfsWorld,
    sess: Session,
    device: String,
    path: String,
    bytes: u64,
    chunk: u64,
    done: DoneCb,
) {
    assert!(chunk > 0, "file write needs a positive chunk");
    sess.mount(sim, w, &device, AccessMode::ReadWrite, move |sim, w, r| {
        if let Err(e) = r {
            done(sim, w, Err(e));
            return;
        }
        sess.open(
            sim,
            w,
            &path,
            OpenFlags::Write,
            Owner::local(0, 0),
            move |sim, w, r| match r {
                Ok(h) => write_chunks(sim, w, sess, h, 0, bytes, chunk, done),
                Err(e) => done(sim, w, Err(e)),
            },
        );
    });
}

fn write_chunks(
    sim: &mut Sim<GfsWorld>,
    w: &mut GfsWorld,
    sess: Session,
    h: Handle,
    offset: u64,
    remaining: u64,
    chunk: u64,
    done: DoneCb,
) {
    if remaining == 0 {
        sess.close(sim, w, h, move |sim, w, r| done(sim, w, r));
        return;
    }
    let this = remaining.min(chunk);
    let data = pattern_bytes(offset, this);
    sess.write(sim, w, h, offset, data, move |sim, w, r| {
        if let Err(e) = r {
            done(sim, w, Err(e));
            return;
        }
        write_chunks(sim, w, sess, h, offset + this, remaining - this, chunk, done)
    });
}

/// Mount → open → chunked sequential reads → close, all through the
/// session facade.
fn run_file_read(
    sim: &mut Sim<GfsWorld>,
    w: &mut GfsWorld,
    sess: Session,
    device: String,
    path: String,
    bytes: u64,
    chunk: u64,
    done: DoneCb,
) {
    assert!(chunk > 0, "file read needs a positive chunk");
    sess.mount(sim, w, &device, AccessMode::ReadWrite, move |sim, w, r| {
        if let Err(e) = r {
            done(sim, w, Err(e));
            return;
        }
        sess.open(
            sim,
            w,
            &path,
            OpenFlags::Read,
            Owner::local(0, 0),
            move |sim, w, r| match r {
                Ok(h) => read_chunks(sim, w, sess, h, 0, bytes, chunk, done),
                Err(e) => done(sim, w, Err(e)),
            },
        );
    });
}

fn read_chunks(
    sim: &mut Sim<GfsWorld>,
    w: &mut GfsWorld,
    sess: Session,
    h: Handle,
    offset: u64,
    remaining: u64,
    chunk: u64,
    done: DoneCb,
) {
    if remaining == 0 {
        sess.close(sim, w, h, move |sim, w, r| done(sim, w, r));
        return;
    }
    let this = remaining.min(chunk);
    sess.read(sim, w, h, offset, this, move |sim, w, r| {
        if let Err(e) = r {
            done(sim, w, Err(e));
            return;
        }
        read_chunks(sim, w, sess, h, offset + this, remaining - this, chunk, done)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfs::fsck;
    use simcore::MBYTE;

    #[test]
    fn builder_runs_a_stream_between_sites() {
        let mut sb = ScenarioBuilder::new(11);
        let fs = sb.nsd_farm("sdsc", NsdFarm::new("d", 4));
        let c = sb.clients("sdsc", 1, Bandwidth::gbit(10.0), SimDuration::from_micros(100), 16)[0];
        sb.workload(Workload::stream(c, fs, 100 * MBYTE, StreamDir::Read, 1));
        let run = sb.run(SimTime::from_secs(10));
        assert_eq!(run.completed, 1);
        assert!(run.errors.is_empty());
        // 4 × GbE-goodput servers ≈ 376 MB/s ⇒ ~0.27 s.
        let t = run.finish.as_secs_f64();
        assert!((0.2..0.4).contains(&t), "stream took {t}s");
    }

    #[test]
    fn builder_file_write_round_trips_and_fscks() {
        let mut sb = ScenarioBuilder::new(12);
        sb.nsd_farm(
            "site",
            NsdFarm::new("d", 4).stored_data().block_size(64 * 1024),
        );
        let c = sb.clients("site", 1, Bandwidth::gbit(1.0), SimDuration::from_micros(100), 64)[0];
        sb.workload(Workload::file_write(c, "d", "/f", MBYTE, 256 * 1024));
        let mut run = sb.run(SimTime::from_secs(10));
        assert_eq!(run.completed, 1, "errors: {:?}", run.errors);
        let report = fsck(&run.world.fss[0].core);
        assert!(report.is_clean(), "fsck: {report:?}");
        // Read the file back through the same session and compare against
        // the pattern (the session keeps its device binding after the run).
        let ok = Rc::new(RefCell::new(false));
        let ok2 = ok.clone();
        let (sim, w) = (&mut run.sim, &mut run.world);
        c.open(
            sim,
            w,
            "/f",
            OpenFlags::Read,
            Owner::local(0, 0),
            move |sim, w, r| {
                let h = r.expect("reopen");
                c.read(sim, w, h, 0, MBYTE, move |_sim, _w, r| {
                    let data = r.expect("read back");
                    assert_eq!(data.len() as u64, MBYTE);
                    assert_eq!(&data[..], &pattern_bytes(0, MBYTE)[..], "payload mismatch");
                    *ok2.borrow_mut() = true;
                });
            },
        );
        sim.run(w);
        assert!(*ok.borrow(), "read-back did not complete");
    }

    #[test]
    fn pattern_bytes_matches_per_byte_definition() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        // Segment-aligned, unaligned, short, and segment-crossing ranges.
        for (off, len) in [(0u64, 0u64), (0, 1), (0, 256), (255, 2), (256, 256), (1000, 5000)] {
            let fast = pattern_bytes(off, len);
            let slow: Vec<u8> = (0..len).map(|i| pattern_byte(off + i)).collect();
            assert_eq!(&fast[..], &slow[..], "off={off} len={len}");
        }
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let off = rng.gen::<u64>() % (1 << 30);
            let len = rng.gen::<u64>() % 2048;
            let fast = pattern_bytes(off, len);
            let slow: Vec<u8> = (0..len).map(|i| pattern_byte(off + i)).collect();
            assert_eq!(&fast[..], &slow[..], "off={off} len={len}");
        }
    }

    #[test]
    fn builder_faults_feed_the_recovery_log() {
        let mut sb = ScenarioBuilder::new(13);
        let fs = sb.nsd_farm("site", NsdFarm::new("d", 4));
        let c = sb.clients("site", 1, Bandwidth::gbit(10.0), SimDuration::from_micros(100), 16)[0];
        sb.workload(Workload::stream(c, fs, 400 * MBYTE, StreamDir::Read, 1));
        sb.faults(FaultPlan::new().server_crash(SimTime::from_millis(100), fs, "d-srv2"));
        let run = sb.run(SimTime::from_secs(30));
        assert_eq!(run.completed, 1);
        assert_eq!(
            run.recovery
                .count(|e| matches!(e, gfs::RecoveryWhat::FaultInjected(_))),
            1
        );
    }
}
