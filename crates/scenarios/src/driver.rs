//! Workload driver: executes a [`workloads::Workload`] phase list against
//! a mounted filesystem, through either the streaming path (figure-scale
//! runs) or the per-operation client path (correctness-scale runs).

use gfs::client;
use gfs::stream::{gfs_stream, StreamDir};
use gfs::types::{ClientId, FsError, FsId, Handle};
use gfs::world::GfsWorld;
use simcore::{Sim, SimTime};
use std::cell::Cell;
use std::rc::Rc;
use workloads::{Phase, Workload};

/// Statistics from a completed workload run.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkloadStats {
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub written_bytes: u64,
    /// When the workload finished.
    pub finished_at: SimTime,
}

/// Run a workload through the streaming path; `on_done` receives totals.
pub fn run_streamed(
    sim: &mut Sim<GfsWorld>,
    w: &mut GfsWorld,
    client: ClientId,
    fs: FsId,
    workload: Workload,
    tag: u32,
    on_done: impl FnOnce(&mut Sim<GfsWorld>, &mut GfsWorld, WorkloadStats) + 'static,
) {
    let stats = Rc::new(Cell::new(WorkloadStats::default()));
    step_streamed(
        sim,
        w,
        client,
        fs,
        workload.phases,
        tag,
        stats,
        Box::new(on_done),
    );
}

#[allow(clippy::too_many_arguments)]
fn step_streamed(
    sim: &mut Sim<GfsWorld>,
    w: &mut GfsWorld,
    client: ClientId,
    fs: FsId,
    mut phases: Vec<Phase>,
    tag: u32,
    stats: Rc<Cell<WorkloadStats>>,
    on_done: Box<dyn FnOnce(&mut Sim<GfsWorld>, &mut GfsWorld, WorkloadStats)>,
) {
    if phases.is_empty() {
        let mut s = stats.get();
        s.finished_at = sim.now();
        on_done(sim, w, s);
        return;
    }
    let phase = phases.remove(0);
    match phase {
        Phase::Compute(d) => {
            sim.after(d, move |sim, w| {
                step_streamed(sim, w, client, fs, phases, tag, stats, on_done)
            });
        }
        Phase::Write { bytes } => {
            gfs_stream(sim, w, client, fs, bytes, StreamDir::Write, tag, move |sim, w| {
                let mut s = stats.get();
                s.written_bytes += bytes;
                stats.set(s);
                step_streamed(sim, w, client, fs, phases, tag, stats, on_done);
            });
        }
        Phase::Read { bytes } | Phase::ReadAt { bytes, .. } => {
            gfs_stream(sim, w, client, fs, bytes, StreamDir::Read, tag, move |sim, w| {
                let mut s = stats.get();
                s.read_bytes += bytes;
                stats.set(s);
                step_streamed(sim, w, client, fs, phases, tag, stats, on_done);
            });
        }
    }
}

/// Run a workload through the real operation path against an open handle
/// (`ReadAt` honours offsets; `Read`/`Write` proceed sequentially).
pub fn run_ops(
    sim: &mut Sim<GfsWorld>,
    w: &mut GfsWorld,
    client: ClientId,
    handle: Handle,
    workload: Workload,
    on_done: impl FnOnce(&mut Sim<GfsWorld>, &mut GfsWorld, Result<WorkloadStats, FsError>) + 'static,
) {
    let stats = Rc::new(Cell::new(WorkloadStats::default()));
    step_ops(
        sim,
        w,
        client,
        handle,
        workload.phases,
        0,
        stats,
        Box::new(on_done),
    );
}

#[allow(clippy::too_many_arguments)]
fn step_ops(
    sim: &mut Sim<GfsWorld>,
    w: &mut GfsWorld,
    client: ClientId,
    handle: Handle,
    mut phases: Vec<Phase>,
    cursor: u64,
    stats: Rc<Cell<WorkloadStats>>,
    on_done: Box<dyn FnOnce(&mut Sim<GfsWorld>, &mut GfsWorld, Result<WorkloadStats, FsError>)>,
) {
    if phases.is_empty() {
        let mut s = stats.get();
        s.finished_at = sim.now();
        on_done(sim, w, Ok(s));
        return;
    }
    let phase = phases.remove(0);
    match phase {
        Phase::Compute(d) => {
            sim.after(d, move |sim, w| {
                step_ops(sim, w, client, handle, phases, cursor, stats, on_done)
            });
        }
        Phase::Write { bytes } => {
            let data = bytes::Bytes::from(vec![0x42u8; bytes as usize]);
            client::write(sim, w, client, handle, cursor, data, move |sim, w, r| match r {
                Ok(()) => {
                    let mut s = stats.get();
                    s.written_bytes += bytes;
                    stats.set(s);
                    step_ops(sim, w, client, handle, phases, cursor + bytes, stats, on_done)
                }
                Err(e) => on_done(sim, w, Err(e)),
            });
        }
        Phase::Read { bytes } => {
            client::read(sim, w, client, handle, cursor, bytes, move |sim, w, r| match r {
                Ok(data) => {
                    let mut s = stats.get();
                    s.read_bytes += data.len() as u64;
                    stats.set(s);
                    step_ops(
                        sim,
                        w,
                        client,
                        handle,
                        phases,
                        cursor + data.len() as u64,
                        stats,
                        on_done,
                    )
                }
                Err(e) => on_done(sim, w, Err(e)),
            });
        }
        Phase::ReadAt { offset, bytes } => {
            client::read(sim, w, client, handle, offset, bytes, move |sim, w, r| match r {
                Ok(data) => {
                    let mut s = stats.get();
                    s.read_bytes += data.len() as u64;
                    stats.set(s);
                    step_ops(sim, w, client, handle, phases, cursor, stats, on_done)
                }
                Err(e) => on_done(sim, w, Err(e)),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfs::fscore::FsConfig;
    use gfs::types::{OpenFlags, Owner};
    use gfs::world::{FsParams, WorldBuilder};
    use gfs_auth::handshake::AccessMode;
    use simcore::{Bandwidth, SimDuration, GBYTE, MBYTE};
    use std::cell::RefCell;
    use workloads::{scec, sort, visualization};

    fn world() -> (Sim<GfsWorld>, GfsWorld, ClientId, FsId) {
        let mut b = WorldBuilder::new(31);
        b.key_bits(384);
        let srv = b.topo().node("srv");
        let cli = b.topo().node("cli");
        b.topo().duplex_link(cli, srv, Bandwidth::gbit(10.0), SimDuration::from_millis(5), "l");
        let c = b.cluster("drv");
        let fs = b.filesystem(
            c,
            FsParams::ideal(
                FsConfig::small_test("wl"),
                srv,
                vec![srv],
                Bandwidth::gbyte(2.0),
                SimDuration::from_micros(100),
            ),
        );
        let client = b.client(c, cli, 512);
        let (sim, w) = b.build();
        (sim, w, client, fs)
    }

    #[test]
    fn scec_stream_moves_all_bytes() {
        let (mut sim, mut w, client, fs) = world();
        let wl = scec(10 * GBYTE, GBYTE);
        let out = Rc::new(Cell::new(WorkloadStats::default()));
        let o = out.clone();
        run_streamed(&mut sim, &mut w, client, fs, wl, 1, move |_s, _w, st| {
            o.set(st)
        });
        sim.run(&mut w);
        assert_eq!(out.get().written_bytes, 10 * GBYTE);
        assert!(out.get().finished_at > SimTime::ZERO);
    }

    #[test]
    fn sort_reads_then_writes() {
        let (mut sim, mut w, client, fs) = world();
        let wl = sort(4 * GBYTE);
        let out = Rc::new(Cell::new(WorkloadStats::default()));
        let o = out.clone();
        run_streamed(&mut sim, &mut w, client, fs, wl, 1, move |_s, _w, st| {
            o.set(st)
        });
        sim.run(&mut w);
        assert_eq!(out.get().read_bytes, 4 * GBYTE);
        assert_eq!(out.get().written_bytes, 4 * GBYTE);
    }

    #[test]
    fn visualization_pacing_adds_compute_time() {
        let (mut sim, mut w, client, fs) = world();
        // 10 frames x 100 MB at >= 1 GB/s: I/O ~1s; compute 10 x 1 s.
        let wl = visualization(10, 100 * MBYTE, SimDuration::from_secs(1));
        let out = Rc::new(Cell::new(WorkloadStats::default()));
        let o = out.clone();
        run_streamed(&mut sim, &mut w, client, fs, wl, 1, move |_s, _w, st| {
            o.set(st)
        });
        sim.run(&mut w);
        let t = out.get().finished_at.as_secs_f64();
        assert!(t >= 10.0, "frame pacing ignored: {t}s");
        assert!(t < 13.0, "too slow: {t}s");
    }

    #[test]
    fn ops_path_runs_mixed_workload_with_real_files() {
        let (mut sim, mut w, client, fs) = world();
        let _ = fs;
        let done: Rc<RefCell<Option<WorkloadStats>>> = Rc::new(RefCell::new(None));
        let d = done.clone();
        client::mount(&mut sim, &mut w, client, "wl", AccessMode::ReadWrite, move |sim, w, r| {
            r.unwrap();
            client::open(sim, w, client, "wl", "/mixed", OpenFlags::ReadWrite, Owner::local(1, 1), move |sim, w, r| {
                let h = r.unwrap();
                let wl = Workload {
                    name: "mixed".into(),
                    phases: vec![
                        Phase::Write { bytes: 200_000 },
                        Phase::Compute(SimDuration::from_millis(10)),
                        Phase::ReadAt { offset: 50_000, bytes: 10_000 },
                        Phase::Write { bytes: 100_000 },
                    ],
                };
                run_ops(sim, w, client, h, wl, move |_s, _w, r| {
                    *d.borrow_mut() = Some(r.unwrap());
                });
            });
        });
        sim.run(&mut w);
        let st = done.borrow_mut().take().expect("workload completed");
        assert_eq!(st.written_bytes, 300_000);
        assert_eq!(st.read_bytes, 10_000);
        // The file reflects the sequential writes: 200k at 0, 100k at 200k.
        assert_eq!(w.fss[0].core.stat("/mixed").unwrap().size, 300_000);
    }
}
