//! SC'02 (paper §2, Figs. 1–2): the first wide-area Global File System
//! demonstration — QFS/SANergy at SDSC, the Fibre Channel SAN stretched to
//! the Baltimore show floor through Nishan FCIP gateways over a 10 Gb/s
//! WAN (80 ms RTT), 4 GbE channels per gateway pair × 2 pairs = 8 Gb/s of
//! tunnel capacity.
//!
//! Paper result (Fig. 2): sustained reads of ~720 MB/s — a "very healthy
//! fraction" of the 1 GB/s ceiling, remarkably flat over time. In the
//! model that number emerges from FCIP framing efficiency and
//! buffer-credit windows at 80 ms RTT; nothing is hard-coded to 720.

use crate::common;
use gfs::sanfs::{san_read, SanFs};
use gfs::world::WorldBuilder;
use simcore::{Bandwidth, SimDuration, SimTime, Summary, TimeSeries, MBYTE};
use simnet::Network;
use simsan::FcipSpec;

/// Scenario parameters.
#[derive(Clone, Debug)]
pub struct Sc02Config {
    /// FCIP tunnel count (8 = 2 Nishan pairs × 4 GbE channels).
    pub tunnels: u32,
    /// One-way WAN delay (40 ms ⇒ the measured 80 ms RTT).
    pub one_way: SimDuration,
    /// Gateway characteristics.
    pub fcip: FcipSpec,
    /// Observation window length.
    pub duration: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Sc02Config {
    fn default() -> Self {
        Sc02Config {
            tunnels: 8,
            one_way: SimDuration::from_millis(
                common::delay_ms::SDSC_BALTIMORE_ONEWAY,
            ),
            fcip: FcipSpec::nishan_gbe(),
            duration: SimDuration::from_secs(60),
            seed: 2002,
        }
    }
}

/// Scenario output.
#[derive(Clone, Debug)]
pub struct Sc02Result {
    /// Read throughput over time, MB/s per 1 s window (the Fig. 2 curve).
    pub series: TimeSeries,
    /// Steady-state summary (MB/s), ramp and tail excluded.
    pub steady: Summary,
    /// The paper's reported value for comparison.
    pub paper_mbs: f64,
    /// The theoretical ceiling (8 Gb/s in the paper).
    pub ceiling_mbs: f64,
}

/// Run the SC'02 demonstration.
pub fn run(cfg: Sc02Config) -> Sc02Result {
    let mut b = WorldBuilder::new(cfg.seed);
    b.key_bits(384);

    // Baltimore side: show-floor switch + the Sun SF6800 client.
    let balt_sw = b.topo().node("balt-sw");
    let client = b.topo().node("sf6800");
    b.topo().duplex_link(
        client,
        balt_sw,
        Bandwidth::gbit(10.0),
        SimDuration::from_micros(20),
        "floor",
    );
    // SDSC side: the QFS metadata server, reachable over the same WAN.
    let mds = b.topo().node("qfs-mds");
    b.topo().duplex_link(
        mds,
        balt_sw,
        Bandwidth::gbit(1.0),
        cfg.one_way,
        "mds-wan",
    );
    // Per-tunnel chain: SAN store endpoint -> FCIP tunnel -> Baltimore.
    // The local FC hop runs at 2 Gb/s (a SAN path through the Brocade);
    // the WAN hop at GbE x FCIP framing efficiency with the measured
    // one-way delay.
    let goodput = cfg.fcip.goodput();
    let mut endpoints = Vec::new();
    for i in 0..cfg.tunnels {
        let store = b.topo().node(format!("san-store-{i}"));
        let gw = b.topo().node(format!("nishan-{i}"));
        b.topo().duplex_link(
            store,
            gw,
            Bandwidth::gbit(2.0).scaled(0.95),
            SimDuration::from_micros(30),
            format!("fc-{i}"),
        );
        let (fwd, rev) = b.topo().duplex_link(
            gw,
            balt_sw,
            goodput,
            cfg.one_way,
            format!("tunnel-{i}"),
        );
        // Per-channel wander of a loaded long-haul GbE path.
        b.topo().set_jitter(fwd, 0.02);
        b.topo().set_jitter(rev, 0.02);
        endpoints.push(store);
    }
    b.cluster("sdsc.qfs");
    let (mut sim, mut w) = b.build();

    const TAG_READ: u32 = 1;
    Network::enable_monitoring(&mut sim, &mut w, SimDuration::from_secs(1));
    w.net.register_tag(TAG_READ, "sc02-read");

    // Size the transfer to outlast the observation window, so the series
    // shows steady state throughout.
    let per_tunnel_est = cfg.fcip.credit_rate(2.0 * cfg.one_way.as_secs_f64());
    let est_total =
        per_tunnel_est.bytes_per_sec() * cfg.tunnels as f64 * cfg.duration.as_secs_f64();
    let bytes = (est_total * 1.5) as u64;

    let fs = SanFs {
        mds,
        tunnel_endpoints: endpoints,
        fcip: cfg.fcip.clone(),
    };
    san_read(&mut sim, &mut w, &fs, client, bytes, TAG_READ, |_s, _w| {});

    let horizon = SimTime::ZERO + cfg.duration;
    sim.set_horizon(horizon);
    sim.run(&mut w);
    let all = w.net.finish_monitoring(horizon);
    let mut series = common::series_named(&all, "sc02-read");
    // Report in MB/s like the paper's axis.
    for p in &mut series.points {
        p.value /= MBYTE as f64;
    }
    let dur_s = cfg.duration.as_secs_f64() as u64;
    let steady_vals: Vec<f64> = series
        .points
        .iter()
        .filter(|p| {
            p.t > SimTime::from_secs(3) && p.t <= SimTime::from_secs(dur_s.saturating_sub(1))
        })
        .map(|p| p.value)
        .collect();
    Sc02Result {
        series,
        steady: Summary::of(&steady_vals),
        paper_mbs: 720.0,
        ceiling_mbs: cfg.tunnels as f64 * 125.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_720_mbs_at_80ms() {
        let r = run(Sc02Config::default());
        assert!(
            (r.steady.mean - r.paper_mbs).abs() < 40.0,
            "SC'02 steady mean {:.1} MB/s vs paper {:.0}",
            r.steady.mean,
            r.paper_mbs
        );
        // Flatness: the paper stresses how sustainable the rate is.
        assert!(
            r.steady.stddev < 0.05 * r.steady.mean,
            "rate too noisy: stddev {:.1} of mean {:.1}",
            r.steady.stddev,
            r.steady.mean
        );
        // And it is a healthy fraction of — but below — the 1 GB/s ceiling.
        assert!(r.steady.max < r.ceiling_mbs);
        assert!(r.steady.mean > 0.6 * r.ceiling_mbs);
    }

    #[test]
    fn shorter_rtt_raises_throughput() {
        // The credit window stops binding when the WAN shrinks: the same
        // configuration across a 10 ms RTT should approach framing-limited
        // goodput (~935 MB/s over 8 tunnels).
        let cfg = Sc02Config {
            one_way: SimDuration::from_millis(5),
            ..Default::default()
        };
        let r = run(cfg);
        assert!(
            r.steady.mean > 880.0,
            "short-RTT mean {:.1} MB/s should be framing-limited",
            r.steady.mean
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(Sc02Config::default());
        let b = run(Sc02Config::default());
        assert_eq!(a.series.points, b.series.points);
    }
}
