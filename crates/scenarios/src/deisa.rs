//! DEISA (paper §7, Fig. 12): the world's first production multi-cluster
//! GPFS deployment — four European core sites (CINECA, FZJ, IDRIS, RZG)
//! each exporting its own filesystem to all the others over a 1 Gb/s WAN,
//! with a *unified UID space* (so no GSI mapping layer is needed).
//!
//! Paper results: "I/O rates of more than 100 Mbytes/s, thus hitting the
//! theoretical limit of the network connection", demonstrated with a
//! plasma-physics turbulence code doing direct I/O to disks "hundreds of
//! kilometers away".

use crate::common::TCP_EFF;
use gfs::admin::connect_clusters;
use gfs::client;
use gfs::fscore::{DataMode, FsConfig};
use gfs::stream::{gfs_stream, StreamDir};
use gfs::types::{ClientId, ClusterId, FsId};
use gfs::world::{FsParams, WorldBuilder};
use gfs_auth::handshake::AccessMode;
use simcore::{Bandwidth, SimDuration, SimTime, MBYTE};
use simnet::NodeId;
use std::cell::Cell;
use std::rc::Rc;

/// The four DEISA core sites.
pub const SITES: [&str; 4] = ["cineca", "fzj", "idris", "rzg"];

/// One-way delays from each site to the GÉANT hub, ms.
const SITE_DELAY_MS: [u64; 4] = [8, 5, 6, 7];

/// Scenario parameters.
#[derive(Clone, Debug)]
pub struct DeisaConfig {
    /// WAN link rate between each site and the hub (1 Gb/s in 2005).
    pub wan: Bandwidth,
    /// Bytes the plasma-physics code moves per measurement.
    pub io_bytes: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeisaConfig {
    fn default() -> Self {
        DeisaConfig {
            wan: Bandwidth::gbit(1.0),
            io_bytes: 2_000 * MBYTE,
            seed: 2005,
        }
    }
}

/// Scenario output.
#[derive(Clone, Debug)]
pub struct DeisaResult {
    /// Remote mounts that succeeded (site, remote device).
    pub mounts: Vec<(String, String)>,
    /// Measured (reader site, serving site, MB/s) for the plasma-code
    /// direct-I/O runs.
    pub io_rates: Vec<(String, String, f64)>,
    /// The network-limit goodput in MB/s (what the paper says they hit).
    pub network_limit_mbs: f64,
}

struct Site {
    cluster: ClusterId,
    fs: FsId,
    client: ClientId,
    gw: NodeId,
}

/// Run the DEISA multi-cluster deployment.
pub fn run(cfg: DeisaConfig) -> DeisaResult {
    let mut b = WorldBuilder::new(cfg.seed);
    b.key_bits(512);
    let hub = b.topo().node("geant-hub");
    let mut sites = Vec::new();
    for (i, name) in SITES.iter().enumerate() {
        let gw = b.topo().node(format!("{name}-gw"));
        let servers = b.topo().node(format!("{name}-servers"));
        b.topo().duplex_link(
            gw,
            hub,
            cfg.wan.scaled(TCP_EFF),
            SimDuration::from_millis(SITE_DELAY_MS[i]),
            format!("{name}-wan"),
        );
        b.topo().duplex_link(
            servers,
            gw,
            Bandwidth::gbit(8.0),
            SimDuration::from_micros(100),
            format!("{name}-lan"),
        );
        let cluster = b.cluster(format!("{name}.deisa.org"));
        let fs = b.filesystem(
            cluster,
            FsParams::ideal(
                FsConfig {
                    name: format!("gpfs-{name}"),
                    block_size: 1 << 20,
                    nsd_blocks: 1 << 24,
                    nsd_count: 8,
                    data_mode: DataMode::Synthetic,
                },
                servers,
                vec![servers],
                Bandwidth::mbyte(400.0),
                SimDuration::from_micros(300),
            ),
        );
        let client = b.client(cluster, gw, 64);
        sites.push((cluster, fs, client, gw, servers));
    }
    let (mut sim, mut w) = b.build();

    // Full-mesh mmauth/mmremotecluster/mmremotefs wiring: each site
    // exports its filesystem to every other site.
    let site_infos: Vec<Site> = sites
        .iter()
        .map(|&(cluster, fs, client, gw, _srv)| Site {
            cluster,
            fs,
            client,
            gw,
        })
        .collect();
    for (i, _) in SITES.iter().enumerate() {
        for (j, _) in SITES.iter().enumerate() {
            if i == j {
                continue;
            }
            let exporter = site_infos[i].cluster;
            let importer = site_infos[j].cluster;
            let device = format!("gpfs-{}", SITES[i]);
            // Contact node: the exporting site's gateway.
            connect_clusters(&mut w, exporter, importer, &device, AccessMode::ReadWrite, site_infos[i].gw);
        }
    }

    // Mount everything everywhere (the common global file system): 12
    // remote mounts, each running the real RSA handshake over the WAN.
    let mounted: Rc<Cell<u32>> = Rc::new(Cell::new(0));
    let mut mounts = Vec::new();
    for (j, site) in site_infos.iter().enumerate() {
        for (i, exp_name) in SITES.iter().enumerate() {
            if i == j {
                continue;
            }
            let device = format!("gpfs-{exp_name}");
            mounts.push((SITES[j].to_string(), device.clone()));
            let mounted = mounted.clone();
            client::mount(
                &mut sim,
                &mut w,
                site.client,
                &device,
                AccessMode::ReadWrite,
                move |_s, _w, r| {
                    r.unwrap_or_else(|e| panic!("DEISA mount failed: {e}"));
                    mounted.set(mounted.get() + 1);
                },
            );
        }
    }
    sim.run(&mut w);
    assert_eq!(mounted.get(), 12, "all 12 cross mounts must succeed");

    // Plasma-physics direct I/O: each site reads from one remote site in
    // turn (sequentially, so each measurement sees an unloaded WAN).
    let mut io_rates = Vec::new();
    for j in 0..SITES.len() {
        let i = (j + 1) % SITES.len();
        let reader = &site_infos[j];
        let serving_fs = site_infos[i].fs;
        let start = sim.now();
        let done = Rc::new(Cell::new(0u64));
        let d2 = done.clone();
        gfs_stream(
            &mut sim,
            &mut w,
            reader.client,
            serving_fs,
            cfg.io_bytes,
            StreamDir::Read,
            1,
            move |sim, _w| d2.set(sim.now().as_nanos()),
        );
        sim.run(&mut w);
        let secs = SimTime::from_nanos(done.get()).since(start).as_secs_f64();
        io_rates.push((
            SITES[j].to_string(),
            SITES[i].to_string(),
            cfg.io_bytes as f64 / secs / MBYTE as f64,
        ));
    }

    DeisaResult {
        mounts,
        io_rates,
        network_limit_mbs: cfg.wan.scaled(TCP_EFF).as_mbyte_per_sec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sites_cross_mount_and_hit_network_limit() {
        let r = run(DeisaConfig::default());
        assert_eq!(r.mounts.len(), 12);
        assert_eq!(r.io_rates.len(), 4);
        for (reader, server, mbs) in &r.io_rates {
            // "more than 100 Mbytes/s, thus hitting the theoretical limit"
            assert!(
                *mbs > 100.0,
                "{reader}<-{server}: {mbs:.1} MB/s below the paper's 100"
            );
            assert!(
                *mbs <= r.network_limit_mbs + 1.0,
                "{reader}<-{server}: {mbs:.1} exceeds the 1 Gb/s limit"
            );
            assert!(
                *mbs > 0.95 * r.network_limit_mbs,
                "{reader}<-{server}: {mbs:.1} MB/s not at the network limit ({:.1})",
                r.network_limit_mbs
            );
        }
    }

    #[test]
    fn fatter_wan_raises_the_limit() {
        let cfg = DeisaConfig {
            wan: Bandwidth::gbit(10.0),
            io_bytes: 4_000 * MBYTE,
            ..Default::default()
        };
        let r = run(cfg);
        for (_, _, mbs) in &r.io_rates {
            // Now bounded by the 400 MB/s site filesystems instead.
            assert!(*mbs > 350.0, "10G WAN run stuck at {mbs:.0} MB/s");
        }
    }
}
