//! The metadata storm: many clients racing namespace operations over a
//! ~million-file tree.
//!
//! The paper's production system served a half-petabyte *namespace* to
//! every TeraGrid site; the streaming figures never exercise that side of
//! the system. This scenario does: each sweep point generates a three-level
//! tree (`/tXX/sYY/fZZZZ`) of ~131k files directly on the filesystem core,
//! then lets a crowd of clients race mkdir / create / stat / readdir /
//! small-write / remove RPCs against it through the full client stack
//! (mount, metadata RPCs at the manager, dentry caches, byte-range tokens,
//! write-behind). Eight points × (131,344 tree ops + 32 clients × 128 race
//! ops) ≈ 1.08M metadata operations per run at the defaults.
//!
//! Points are fully independent seeded worlds, so they fan out through
//! [`crate::parallel::run_indexed`]; the merged [`StormReport`] — including
//! its order-sensitive fingerprint — is bit-identical at any
//! `GFS_SWEEP_THREADS` value.

use crate::builder::{pattern_bytes, DataPathStats, NsdFarm, ScenarioBuilder};
use gfs::faults::{FaultPlan, ProgressInjector, ProgressPlan, RecoveryWhat};
use gfs::fscore::MetaSnapshot;
use gfs::session::Session;
use gfs::types::{FsError, OpenFlags, Owner};
use gfs::world::GfsWorld;
use gfs_auth::handshake::AccessMode;
use rand::{rngs::StdRng, Rng};
use simcore::{det_rng, Bandwidth, Sim, SimDuration, SimTime};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// How each client picks its next operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StormMix {
    /// Uniform random paths and a fixed op distribution — every probe is
    /// equally likely to land anywhere in the tree.
    Uniform,
    /// Trace-shaped: each client works through untar-like (sequential
    /// creates), build-like (stat + small-write), and `ls -R`-like
    /// (readdir + stat) phases, pinned to a working directory that changes
    /// only every 16 ops. Locality concentrates dentry-cache hits the way
    /// real client traces do.
    ///
    /// Kept byte-identical to its pre-corpus pins; the real-corpus path
    /// is the separate [`StormMix::Corpus`] variant.
    Trace,
    /// Replay a generated [`TraceCorpus`] shape: each op of the corpus is
    /// mapped onto the storm's `(top, sub, file, selector)` coordinates by
    /// hashing its path components, and every client walks the script
    /// sequentially from its own offset. Path locality — and therefore
    /// dentry-cache behavior — is the *corpus's*, not a synthetic
    /// working-directory schedule's.
    Corpus(crate::trace::TraceCorpus),
}

/// Storm shape. The defaults produce ≥1M metadata operations.
#[derive(Clone, Copy, Debug)]
pub struct StormConfig {
    /// Independent sweep points (worlds).
    pub points: u32,
    /// Racing mount contexts per point.
    pub clients_per_point: u32,
    /// Flyweight sessions per mount context. `1` (the default) is the
    /// legacy one-session-per-client storm, byte-identical to the
    /// pre-session runs; `> 1` packs that many fan-in sessions onto each
    /// shared context, batching same-instant metadata RPCs into envelopes.
    pub sessions_per_client: u32,
    /// Top-level directories in the generated tree.
    pub top_dirs: u32,
    /// Subdirectories per top-level directory.
    pub sub_dirs: u32,
    /// Files pre-created per subdirectory.
    pub files_per_sub: u32,
    /// Racing operations per session.
    pub ops_per_client: u32,
    /// Cooperating namespace-manager shards. `1` (the default) is the
    /// single-manager storm, byte-identical to pre-partition runs; `> 1`
    /// spreads the top-level directories across `managers` shards
    /// (deterministic placement, `tXX → XX mod managers`) and unlocks the
    /// cross-shard rename arm of the op mix.
    pub managers: u32,
    /// Mount contexts (session groups) that acquire a writeback subtree
    /// lease before racing: group `gi < lease_contexts` leases a private
    /// top `/wNN`, runs 3/4 of its ops inside it through the local
    /// delegate journal, and surrenders (reconciling the journal as bulk
    /// envelopes) when its last chain drains. Effective only with
    /// `managers > 1` — the single-manager storm stays byte-identical.
    pub lease_contexts: u32,
    /// Cadence (ms) of the live rebalance policy: every tick plans the
    /// next authority migration from accumulated subtree heat, drains both
    /// managers and commits with WAL records on each. `0` disables; only
    /// effective with `managers > 1`. The private `/wNN` subtrees all
    /// start on shard 0, so a leased storm always has migrations to find.
    pub rebalance_every_ms: u64,
    /// Bytes written by a small-write op.
    pub write_bytes: u64,
    /// Op-selection shape.
    pub mix: StormMix,
    /// Determinism seed.
    pub seed: u64,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            points: 8,
            clients_per_point: 32,
            sessions_per_client: 1,
            top_dirs: 16,
            sub_dirs: 16,
            files_per_sub: 512,
            ops_per_client: 128,
            managers: 1,
            lease_contexts: 0,
            rebalance_every_ms: 0,
            write_bytes: 4096,
            mix: StormMix::Uniform,
            seed: 2005,
        }
    }
}

impl StormConfig {
    /// A small storm for tests: same shape, two orders of magnitude fewer
    /// operations.
    pub fn small() -> Self {
        StormConfig {
            points: 2,
            clients_per_point: 8,
            sessions_per_client: 1,
            top_dirs: 4,
            sub_dirs: 4,
            files_per_sub: 32,
            ops_per_client: 24,
            managers: 1,
            lease_contexts: 0,
            rebalance_every_ms: 0,
            write_bytes: 4096,
            mix: StormMix::Uniform,
            seed: 2005,
        }
    }

    /// The flyweight-session storm: 8 points × 32 mount contexts × 400
    /// sessions = 102,400 sessions racing 10.27M metadata operations over
    /// a small shared tree, every same-instant batch riding one fan-in
    /// envelope. This is the scale the session layer exists for.
    pub fn massive() -> Self {
        StormConfig {
            points: 8,
            clients_per_point: 32,
            sessions_per_client: 400,
            top_dirs: 8,
            sub_dirs: 8,
            files_per_sub: 64,
            ops_per_client: 100,
            managers: 1,
            // Inert at the default M=1 (`effective_lease_contexts` and the
            // rebalance tick both gate on `managers > 1`, so the 100k
            // single-manager storm stays byte-identical); switched on by
            // `with_managers(4)` in the partitioned bench.
            lease_contexts: 16,
            rebalance_every_ms: 100,
            write_bytes: 4096,
            mix: StormMix::Uniform,
            seed: 2005,
        }
    }

    /// Same config with a different op-selection shape.
    pub fn with_mix(mut self, mix: StormMix) -> Self {
        self.mix = mix;
        self
    }

    /// Same config with `n` flyweight sessions per mount context.
    pub fn with_sessions_per_client(mut self, n: u32) -> Self {
        self.sessions_per_client = n;
        self
    }

    /// Same config partitioned across `m` namespace-manager shards.
    pub fn with_managers(mut self, m: u32) -> Self {
        assert!(m > 0, "storm needs at least one manager shard");
        self.managers = m;
        self
    }

    /// Same config with `n` writeback-leased mount contexts per point.
    pub fn with_leases(mut self, n: u32) -> Self {
        self.lease_contexts = n;
        self
    }

    /// Same config with the live rebalance policy ticking every `ms`.
    pub fn with_rebalance_every(mut self, ms: u64) -> Self {
        self.rebalance_every_ms = ms;
        self
    }

    /// Lease contexts actually in effect: clamped to the context count and
    /// zero unless the namespace is partitioned (the delegate/reconcile
    /// machinery is a partition-era feature; M=1 storms must stay
    /// byte-identical to their pins).
    pub fn effective_lease_contexts(&self) -> u32 {
        if self.managers > 1 {
            self.lease_contexts.min(self.clients_per_point)
        } else {
            0
        }
    }

    /// Total mount contexts across all points.
    pub fn total_clients(&self) -> u64 {
        u64::from(self.points) * u64::from(self.clients_per_point)
    }

    /// Total flyweight sessions across all points.
    pub fn total_sessions(&self) -> u64 {
        self.total_clients() * u64::from(self.sessions_per_client.max(1))
    }

    /// Tree-generation operations per point (phase 1, all counted before
    /// any race op). Progress-keyed fault thresholds are measured against
    /// the per-point op counter, which starts at this value when the race
    /// begins.
    pub fn tree_ops(&self) -> u64 {
        // Leased contexts each get a private `/wNN` subtree of the same
        // shape as a `/tNN`, generated in the same phase.
        let tops = u64::from(self.top_dirs) + u64::from(self.effective_lease_contexts());
        tops * (1 + u64::from(self.sub_dirs) * (1 + u64::from(self.files_per_sub)))
    }

    /// Race operations per point (phase 2), assuming every chain drains.
    pub fn race_ops(&self) -> u64 {
        u64::from(self.clients_per_point)
            * u64::from(self.sessions_per_client.max(1))
            * u64::from(self.ops_per_client)
    }

    /// The per-point op count at `frac` (in `[0, 1]`) of the race — the
    /// natural unit for "crash the NSD server at 40% of the storm".
    pub fn race_op_at(&self, frac: f64) -> u64 {
        self.tree_ops() + (self.race_ops() as f64 * frac) as u64
    }
}

/// Fault schedule for a chaos storm. Progress-keyed events fire when the
/// per-point op counter crosses their threshold; time-keyed events fire at
/// absolute simulation times (the race starts near t = 0). With
/// `wan_clients` the clients sit behind a single flappable WAN link named
/// `"storm-wan"`, so `timed` plans can cut every client off at once.
#[derive(Clone, Debug, Default)]
pub struct ChaosSpec {
    /// Storm-progress-keyed faults ("kill the server at op 400k").
    pub progress: ProgressPlan,
    /// Sim-time-keyed faults ("flap the WAN link every 30 s").
    pub timed: FaultPlan,
    /// Route all storm clients through the `"storm-wan"` link.
    pub wan_clients: bool,
}

impl ChaosSpec {
    /// No faults at all — `run_storm`'s implicit spec.
    pub fn none() -> Self {
        ChaosSpec::default()
    }

    /// Is this spec fault-free?
    pub fn is_empty(&self) -> bool {
        self.progress.is_empty() && self.timed.events.is_empty() && !self.wan_clients
    }
}

/// Merged result of one storm run. All-integer so determinism tests can
/// compare reports exactly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StormReport {
    /// Metadata operations performed (tree generation + client races).
    pub ops: u64,
    /// Operations that surfaced an error (races make `AlreadyExists` /
    /// `NotFound` expected; they are outcomes, not failures).
    pub errors: u64,
    /// Simulation events executed, summed over points.
    pub events: u64,
    /// Order-sensitive fingerprint over every operation result — the
    /// replay-identity witness.
    pub fingerprint: u64,
    /// Path resolutions performed by the cores.
    pub resolves: u64,
    /// Bytes allocated during resolution (error rendering only).
    pub resolve_alloc_bytes: u64,
    /// Distinct interned names, summed over points.
    pub interned_names: u64,
    /// Dentry-cache hits summed over all clients.
    pub dentry_hits: u64,
    /// Dentry-cache misses summed over all clients.
    pub dentry_misses: u64,
    /// Every point's post-storm fsck came back clean.
    pub fsck_clean: bool,
    /// Data-path counters summed over points (small writes do real I/O).
    pub data_path: DataPathStats,
    /// Client watchdog timeouts detected (0 on a healthy run).
    pub timeouts: u64,
    /// Client retries that landed on a different server.
    pub failovers: u64,
    /// Faults applied, from both progress-keyed and time-keyed plans
    /// (manager-loss markers included).
    pub faults_injected: u64,
    /// Restorations logged (link up, server restart, manager recovery).
    pub restores: u64,
    /// Namespace-manager takeovers (epoch bumps summed over points).
    pub manager_epochs: u64,
    /// WAL records replayed while rebuilding manager state.
    pub wal_replayed: u64,
    /// Ops that exhausted the retry budget and surfaced
    /// `Timeout`/`ServerDown` — the storm's "eventually succeeded" check
    /// wants this at 0.
    pub gave_up: u64,
    /// Errors that were `NotFound` — expected race outcomes (a probe
    /// landed on a name another client removed or never created).
    pub err_not_found: u64,
    /// Errors that were `AlreadyExists` — expected race outcomes
    /// (two clients created the same name).
    pub err_exists: u64,
    /// Every other non-gave-up error kind (`NotEmpty`, `IsADirectory`,
    /// ...): still race outcomes, broken out so a fault-free storm can
    /// assert `errors == err_not_found + err_exists + err_races`.
    pub err_races: u64,
    /// Namespace ops that spanned two manager shards (two-phase rename /
    /// boundary mkdir), summed over points. 0 when `managers == 1`.
    pub cross_shard_ops: u64,
    /// Metadata ops absorbed by client-side subtree-lease delegates
    /// without touching a manager queue, summed over points.
    pub delegated_ops: u64,
    /// Subtree leases granted, summed over points.
    pub lease_acquires: u64,
    /// Lease breaks initiated (conflicting op forced a reconcile), summed
    /// over points.
    pub lease_breaks: u64,
    /// Writeback-journal entries applied at a manager during lease
    /// surrender/break reconciliation (each counted once — dedup replays
    /// of a retried reconcile envelope don't recount), summed over points.
    pub reconcile_ops: u64,
    /// Live subtree-authority migrations committed by the in-storm
    /// rebalance policy, summed over points.
    pub rebalance_migrations: u64,
    /// Structural fingerprint of every point's final namespace (name-sorted
    /// recursive walk; timestamps excluded), merged in point order. The
    /// exactly-once witness: a crash-recovered run must match its
    /// fault-free oracle here.
    pub tree_fingerprint: u64,
    /// World-invariant violations found by [`crate::chaos::world_invariants`]
    /// after each point drained (details go to stderr). 0 on any correct
    /// run, faulted or not.
    pub invariant_violations: u64,
    /// Flyweight sessions that raced, summed over points.
    pub sessions: u64,
    /// Fan-in envelopes sent (first attempts), summed over points. 0 on a
    /// legacy one-session-per-client storm.
    pub envelopes: u64,
    /// Metadata ops those envelopes carried, summed over points.
    pub envelope_ops: u64,
    /// Simulated race-phase duration, **max** over points: points model
    /// independent sites storming concurrently, so the slowest site bounds
    /// the storm's end-to-end time on the modeled cluster. Deterministic
    /// (it is simulation time, not wall time), so it is safe to compare
    /// across thread counts and machines.
    pub sim_ns: u64,
}

impl StormReport {
    /// Aggregate modeled metadata throughput: every op in the storm
    /// divided by the slowest point's simulated race duration (the points
    /// run concurrently on the modeled cluster). This is the rate the
    /// manager service model ([`gfs::world::ProtocolCosts::manager_op_service`])
    /// admits — a deterministic quantity, unlike host-dependent wall rates.
    pub fn sim_ops_per_sec(&self) -> f64 {
        if self.sim_ns == 0 {
            return 0.0;
        }
        self.ops as f64 * 1e9 / self.sim_ns as f64
    }

    /// Mean ops per fan-in envelope — the batching-efficiency headline.
    /// 0.0 on a legacy storm that sent no envelopes at all.
    pub fn ops_per_envelope(&self) -> f64 {
        if self.envelopes == 0 {
            0.0
        } else {
            self.envelope_ops as f64 / self.envelopes as f64
        }
    }

    /// Dentry hit rate in `[0, 1]`.
    pub fn dentry_hit_rate(&self) -> f64 {
        let probes = self.dentry_hits + self.dentry_misses;
        if probes == 0 {
            0.0
        } else {
            self.dentry_hits as f64 / probes as f64
        }
    }
}

/// Plain `Send` extract of one point (its world never leaves the thread).
struct PointSummary {
    ops: u64,
    errors: u64,
    events: u64,
    fingerprint: u64,
    meta: MetaSnapshot,
    dentry_hits: u64,
    dentry_misses: u64,
    fsck_clean: bool,
    data_path: DataPathStats,
    timeouts: u64,
    failovers: u64,
    faults_injected: u64,
    restores: u64,
    manager_epochs: u64,
    wal_replayed: u64,
    gave_up: u64,
    err_not_found: u64,
    err_exists: u64,
    err_races: u64,
    cross_shard_ops: u64,
    delegated_ops: u64,
    lease_acquires: u64,
    lease_breaks: u64,
    reconcile_ops: u64,
    rebalance_migrations: u64,
    tree_fingerprint: u64,
    invariant_violations: u64,
    sessions: u64,
    envelopes: u64,
    envelope_ops: u64,
    sim_ns: u64,
}

/// FxHash-style mixing for the result fingerprint: order-sensitive, cheap,
/// and with no dependence on anything but the value sequence.
#[inline]
fn mix(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

/// Small stable code per error variant, for fingerprinting.
fn err_code(e: &FsError) -> u64 {
    match e {
        FsError::NotFound(_) => 1,
        FsError::AlreadyExists(_) => 2,
        FsError::NotADirectory(_) => 3,
        FsError::IsADirectory(_) => 4,
        FsError::NotEmpty(_) => 5,
        FsError::NoSpace => 6,
        FsError::BadHandle => 7,
        FsError::ReadOnly => 8,
        FsError::NotMounted(_) => 9,
        FsError::AuthFailed(_) => 10,
        FsError::InvalidArgument(_) => 11,
        FsError::Timeout => 12,
        FsError::ServerDown => 13,
        FsError::Degraded(_) => 14,
    }
}

/// Shared per-point accounting the op chains update.
struct Tally {
    ops: Cell<u64>,
    errors: Cell<u64>,
    fingerprint: Cell<u64>,
    finished_clients: Cell<u32>,
    gave_up: Cell<u64>,
    err_not_found: Cell<u64>,
    err_exists: Cell<u64>,
    err_races: Cell<u64>,
    /// Instant the last piece of race work completed (chain drain or lease
    /// surrender): the honest end of the race, excluding bookkeeping events
    /// like the periodic rebalance tick that can fire after all chains are
    /// done and would otherwise inflate the measured duration.
    race_end: Cell<SimTime>,
}

impl Tally {
    fn op_result(&self, code: u64, err: Option<&FsError>) {
        self.ops.set(self.ops.get() + 1);
        let v = match err {
            None => code,
            Some(e) => {
                self.errors.set(self.errors.get() + 1);
                // Per-kind breakdown: expected race outcomes vs gave-up.
                // Every error lands in exactly one bucket, so
                // `errors == not_found + exists + races + gave_up`.
                match e {
                    FsError::NotFound(_) => {
                        self.err_not_found.set(self.err_not_found.get() + 1)
                    }
                    FsError::AlreadyExists(_) => {
                        self.err_exists.set(self.err_exists.get() + 1)
                    }
                    FsError::Timeout | FsError::ServerDown | FsError::Degraded(_) => {
                        self.gave_up.set(self.gave_up.get() + 1)
                    }
                    _ => self.err_races.set(self.err_races.get() + 1),
                }
                code << 8 | err_code(e)
            }
        };
        self.fingerprint.set(mix(self.fingerprint.get(), v));
    }
}

/// Run the storm with [`crate::parallel::sweep_threads`] workers.
pub fn run_storm(cfg: &StormConfig) -> StormReport {
    run_storm_with_threads(cfg, crate::parallel::sweep_threads())
}

/// [`run_storm`] with an explicit worker count. The report is bit-identical
/// for any `threads` value: each point is an isolated seeded world and the
/// merge is in point order.
pub fn run_storm_with_threads(cfg: &StormConfig, threads: usize) -> StormReport {
    run_chaos_storm_with_threads(cfg, &ChaosSpec::none(), threads)
}

/// A storm under a fault schedule, with the default worker count.
pub fn run_chaos_storm(cfg: &StormConfig, chaos: &ChaosSpec) -> StormReport {
    run_chaos_storm_with_threads(cfg, chaos, crate::parallel::sweep_threads())
}

/// [`run_chaos_storm`] with an explicit worker count. The same fault spec
/// and seed produce bit-identical reports across runs and thread counts:
/// faults, timeouts, backoffs and recoveries are all simulation events in
/// isolated per-point worlds.
pub fn run_chaos_storm_with_threads(
    cfg: &StormConfig,
    chaos: &ChaosSpec,
    threads: usize,
) -> StormReport {
    let cfg = *cfg;
    let summaries = crate::parallel::run_indexed(cfg.points as usize, threads, |i| {
        run_point(&cfg, chaos, i as u32)
    });
    let mut r = StormReport {
        ops: 0,
        errors: 0,
        events: 0,
        fingerprint: 0,
        resolves: 0,
        resolve_alloc_bytes: 0,
        interned_names: 0,
        dentry_hits: 0,
        dentry_misses: 0,
        fsck_clean: true,
        data_path: DataPathStats::default(),
        timeouts: 0,
        failovers: 0,
        faults_injected: 0,
        restores: 0,
        manager_epochs: 0,
        wal_replayed: 0,
        gave_up: 0,
        err_not_found: 0,
        err_exists: 0,
        err_races: 0,
        cross_shard_ops: 0,
        delegated_ops: 0,
        lease_acquires: 0,
        lease_breaks: 0,
        reconcile_ops: 0,
        rebalance_migrations: 0,
        tree_fingerprint: 0,
        invariant_violations: 0,
        sessions: 0,
        envelopes: 0,
        envelope_ops: 0,
        sim_ns: 0,
    };
    for s in &summaries {
        r.ops += s.ops;
        r.errors += s.errors;
        r.events += s.events;
        r.fingerprint = mix(r.fingerprint, s.fingerprint);
        r.resolves += s.meta.resolves;
        r.resolve_alloc_bytes += s.meta.resolve_alloc_bytes;
        r.interned_names += s.meta.interned_names;
        r.dentry_hits += s.dentry_hits;
        r.dentry_misses += s.dentry_misses;
        r.fsck_clean &= s.fsck_clean;
        r.data_path = r.data_path.merged(&s.data_path);
        r.timeouts += s.timeouts;
        r.failovers += s.failovers;
        r.faults_injected += s.faults_injected;
        r.restores += s.restores;
        r.manager_epochs += s.manager_epochs;
        r.wal_replayed += s.wal_replayed;
        r.gave_up += s.gave_up;
        r.err_not_found += s.err_not_found;
        r.err_exists += s.err_exists;
        r.err_races += s.err_races;
        r.cross_shard_ops += s.cross_shard_ops;
        r.delegated_ops += s.delegated_ops;
        r.lease_acquires += s.lease_acquires;
        r.lease_breaks += s.lease_breaks;
        r.reconcile_ops += s.reconcile_ops;
        r.rebalance_migrations += s.rebalance_migrations;
        r.tree_fingerprint = mix(r.tree_fingerprint, s.tree_fingerprint);
        r.invariant_violations += s.invariant_violations;
        r.sessions += s.sessions;
        r.envelopes += s.envelopes;
        r.envelope_ops += s.envelope_ops;
        r.sim_ns = r.sim_ns.max(s.sim_ns);
    }
    r
}

/// One sweep point: generate the tree, storm it, summarize.
fn run_point(cfg: &StormConfig, chaos: &ChaosSpec, point: u32) -> PointSummary {
    let point_seed = cfg
        .seed
        .wrapping_add(u64::from(point).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut sb = ScenarioBuilder::new(point_seed);
    let fs = sb.nsd_farm(
        "site",
        NsdFarm::new("meta", 4)
            .block_size(64 * 1024)
            .managers(cfg.managers),
    );
    // Chaos storms can interpose a WAN hop so one link flap severs every
    // client at once; the link is named for fault plans to target.
    let client_site = if chaos.wan_clients {
        sb.wan(
            "edge",
            "site",
            Bandwidth::gbit(10.0),
            SimDuration::from_millis(2),
            "storm-wan",
        );
        "edge"
    } else {
        "site"
    };
    // One session per client (legacy, byte-identical event stream), or
    // `sessions_per_client` fan-in sessions packed onto each shared mount
    // context (the flyweight scale path).
    let sessions = if cfg.sessions_per_client > 1 {
        sb.sessions(
            client_site,
            cfg.clients_per_point * cfg.sessions_per_client,
            cfg.sessions_per_client,
        )
    } else {
        sb.clients(
            client_site,
            cfg.clients_per_point,
            Bandwidth::gbit(1.0),
            SimDuration::from_micros(100),
            64,
        )
    };
    sb.faults(chaos.timed.clone());
    // No queued workloads: the builder just assembles the world; the storm
    // drives the client API directly.
    let mut run = sb.run(SimTime::from_secs(1));

    let tally = Rc::new(Tally {
        ops: Cell::new(0),
        errors: Cell::new(0),
        fingerprint: Cell::new(0),
        finished_clients: Cell::new(0),
        gave_up: Cell::new(0),
        err_not_found: Cell::new(0),
        err_exists: Cell::new(0),
        err_races: Cell::new(0),
        race_end: Cell::new(SimTime::ZERO),
    });
    let injector = (!chaos.progress.is_empty())
        .then(|| Rc::new(RefCell::new(ProgressInjector::new(&chaos.progress))));
    // Corpus-shaped storms compile the trace once per point into storm
    // coordinates; every client then walks the same script from its own
    // offset, so the op stream carries the corpus's real path locality.
    let script: Option<Rc<Vec<(u32, u32, u32, u32)>>> = match cfg.mix {
        StormMix::Corpus(c) => Some(Rc::new(corpus_script(
            &c.generate(4, 2, cfg.seed),
            cfg,
        ))),
        _ => None,
    };

    // Phase 1 — tree generation, straight on the core (the bulk of the
    // operation count; each call is a full path resolution + mutation).
    {
        let core = &mut run.world.fss[fs.0 as usize].core;
        // Deterministic placement map for the partitioned storm: top dir
        // `tXX` lives on shard `XX mod managers`, a perfectly balanced
        // round-robin that makes every cross-top rename a two-phase op.
        if cfg.managers > 1 {
            for t in 0..cfg.top_dirs {
                core.shards.assign(format!("t{t:02}"), t % cfg.managers);
            }
        }
        let owner = Owner::local(0, 0);
        let gen_top = |core: &mut gfs::FsCore, top: String| {
            core.mkdir(&top, owner.clone(), 0).expect("mkdir top");
            tally.op_result(20, None);
            for s in 0..cfg.sub_dirs {
                let sub = format!("{top}/s{s:02}");
                core.mkdir(&sub, owner.clone(), 0).expect("mkdir sub");
                tally.op_result(21, None);
                for f in 0..cfg.files_per_sub {
                    core.create_file(&format!("{sub}/f{f:04}"), owner.clone(), 0)
                        .expect("create file");
                    tally.op_result(22, None);
                }
            }
        };
        for t in 0..cfg.top_dirs {
            gen_top(core, format!("/t{t:02}"));
        }
        // Private writeback subtrees, one per leased context — all pinned
        // to shard 0, a deliberate hotspot the live rebalance policy gets
        // to discover and migrate mid-storm.
        for i in 0..cfg.effective_lease_contexts() {
            core.shards.assign(format!("w{i:02}"), 0);
            gen_top(core, format!("/w{i:02}"));
        }
    }

    // Phase 2 — the race: each mount context is mounted once (by its first
    // session), the rest of its sessions bind the device, then every
    // session runs its op chain. Chains launched from one callback share
    // the instant, so a fan-in context's first round is already one
    // envelope.
    let race_start = run.sim.now();
    {
        let (sim, w) = (&mut run.sim, &mut run.world);
        sim.set_horizon(sim.now() + SimDuration::from_secs(3600));
        // Progress events at or below the tree-op count fire before the
        // first race op ("kill the server at op 0").
        if let Some(inj) = &injector {
            inj.borrow_mut().advance(sim, w, tally.ops.get());
        }
        let spc = cfg.sessions_per_client.max(1) as usize;
        let lease_n = cfg.effective_lease_contexts() as usize;
        for (gi, group) in sessions.chunks(spc).enumerate() {
            let group = group.to_vec();
            let tally = tally.clone();
            let cfg = *cfg;
            let inj = injector.clone();
            let script = script.clone();
            group[0].mount(sim, w, "meta", AccessMode::ReadWrite, move |sim, w, r| {
                r.expect("storm mount");
                let g0 = group[0];
                let glen = group.len() as u32;
                let launch = move |sim: &mut Sim<GfsWorld>,
                                   w: &mut GfsWorld,
                                   lease: Option<Rc<LeaseGroup>>| {
                    for (j, &sess) in group.iter().enumerate() {
                        if j > 0 {
                            sess.bind_device(w, "meta");
                        }
                        let si = gi * spc + j;
                        let rng = det_rng(point_seed, &format!("storm-client-{si}"));
                        next_op(
                            sim,
                            w,
                            sess,
                            rng,
                            cfg.ops_per_client,
                            cfg,
                            tally.clone(),
                            inj.clone(),
                            lease.clone(),
                            script.clone(),
                        );
                    }
                };
                if gi < lease_n {
                    // Writeback-leased group: take the lease on the private
                    // subtree first, then launch every chain — the group
                    // surrenders (reconciling its journal) when the last
                    // chain drains.
                    let top = format!("/w{gi:02}");
                    let lease = Rc::new(LeaseGroup {
                        wi: gi as u32,
                        top: top.clone(),
                        sess: g0,
                        left: Cell::new(glen),
                    });
                    g0.acquire_lease(sim, w, &top, move |sim, w, r| {
                        r.expect("storm lease acquire");
                        launch(sim, w, Some(lease));
                    });
                } else {
                    launch(sim, w, None);
                }
            });
        }
        // The live rebalance policy: a deterministic in-sim tick, so both
        // the migrations and everything they shift stay bit-identical
        // across thread counts.
        if cfg.managers > 1 && cfg.rebalance_every_ms > 0 {
            schedule_rebalance(sim, fs, *cfg, tally.clone());
        }
        sim.run(w);
    }
    assert_eq!(
        tally.finished_clients.get(),
        cfg.clients_per_point * cfg.sessions_per_client.max(1),
        "storm point {point}: some session chains did not drain"
    );

    if std::env::var_os("GFS_STORM_DEBUG").is_some() {
        let w = &run.world;
        let inst = &w.fss[fs.0 as usize];
        let busy: Vec<f64> = inst
            .mgrs
            .iter()
            .map(|m| m.busy_until.since(SimTime::ZERO).as_nanos() as f64 / 1e6)
            .collect();
        let svc: Vec<f64> = inst
            .mgrs
            .iter()
            .map(|m| m.service_ns as f64 / 1e6)
            .collect();
        eprintln!("point {point}: shard_service(ms)={svc:?}");
        let dlg: Vec<f64> = w
            .clients
            .iter()
            .filter(|c| c.delegate_busy_until > SimTime::ZERO)
            .map(|c| c.delegate_busy_until.since(SimTime::ZERO).as_nanos() as f64 / 1e6)
            .collect();
        eprintln!(
            "point {point}: race_end={:.1}ms shard_busy_until(ms)={busy:?} delegate_busy(ms)={dlg:?} migrations={}",
            tally.race_end.get().max(race_start).since(race_start).as_nanos() as f64 / 1e6,
            inst.core.shards.migrations(),
        );
    }
    let dentry_hits = run.world.clients.iter().map(|c| c.dentry.hits).sum();
    let dentry_misses = run.world.clients.iter().map(|c| c.dentry.misses).sum();
    let w = &run.world;
    let core = &w.fss[fs.0 as usize].core;
    // Every point — healthy or faulted — is audited against the world
    // invariants; violations are reported in the summary and detailed on
    // stderr so a failing chaos test names the broken guarantee.
    let violations = crate::chaos::world_invariants(&run.sim, w);
    for msg in &violations {
        eprintln!("storm point {point}: invariant violated: {msg}");
    }
    PointSummary {
        ops: tally.ops.get(),
        errors: tally.errors.get(),
        events: run.sim.executed(),
        fingerprint: tally.fingerprint.get(),
        meta: core.meta_snapshot(),
        dentry_hits,
        dentry_misses,
        fsck_clean: gfs::fsck(core).is_clean(),
        data_path: crate::builder::data_path_stats_of(w),
        timeouts: w
            .recovery
            .count(|e| matches!(e, RecoveryWhat::TimeoutDetected { .. })) as u64,
        failovers: w
            .recovery
            .count(|e| matches!(e, RecoveryWhat::FailedOver { .. })) as u64,
        faults_injected: w
            .recovery
            .count(|e| matches!(e, RecoveryWhat::FaultInjected(_))) as u64,
        restores: w.recovery.count(|e| matches!(e, RecoveryWhat::Restored(_))) as u64,
        manager_epochs: w
            .fss
            .iter()
            .map(|i| i.mgrs.iter().map(|m| m.epoch).sum::<u64>())
            .sum(),
        wal_replayed: w
            .fss
            .iter()
            .map(|i| i.mgrs.iter().map(|m| m.replayed).sum::<u64>())
            .sum(),
        gave_up: tally.gave_up.get(),
        err_not_found: tally.err_not_found.get(),
        err_exists: tally.err_exists.get(),
        err_races: tally.err_races.get(),
        cross_shard_ops: w.fss.iter().map(|i| i.cross_shard_ops).sum(),
        delegated_ops: w.fss.iter().map(|i| i.delegated_ops).sum(),
        lease_acquires: w.fss.iter().map(|i| i.lease_grants).sum(),
        lease_breaks: w.fss.iter().map(|i| i.lease_breaks).sum(),
        reconcile_ops: w.fss.iter().map(|i| i.reconcile_ops).sum(),
        rebalance_migrations: w.fss.iter().map(|i| i.core.shards.migrations()).sum(),
        tree_fingerprint: core.tree_fingerprint(),
        invariant_violations: violations.len() as u64,
        sessions: w.sessions.len() as u64,
        envelopes: w.fanin.envelopes,
        envelope_ops: w.fanin.envelope_ops,
        sim_ns: tally
            .race_end
            .get()
            .max(race_start)
            .since(race_start)
            .as_nanos(),
    }
}

/// A writeback-leased session group: the first session of the group holds
/// the subtree lease on `/w{wi:02}` while every chain in the group runs;
/// the last chain to drain surrenders it, replaying the delegate journal
/// back to the manager as bulk reconcile envelopes.
struct LeaseGroup {
    /// Index of the group's private subtree (`/w{wi:02}`).
    wi: u32,
    /// Absolute path of the leased top directory.
    top: String,
    /// The lease-holding session (first of the group).
    sess: Session,
    /// Chains still running; surrender fires when this hits zero.
    left: Cell<u32>,
}

/// Periodic in-storm rebalance tick: consult the shard map's heat counters
/// and migrate at most one subtree per tick. The tick is an ordinary sim
/// event, so the migrations — and everything they shift — are part of the
/// deterministic event stream. Stops rescheduling once every chain has
/// drained so the point's horizon isn't held open.
fn schedule_rebalance(
    sim: &mut Sim<GfsWorld>,
    fs: gfs::types::FsId,
    cfg: StormConfig,
    tally: Rc<Tally>,
) {
    let total = cfg.clients_per_point * cfg.sessions_per_client.max(1);
    sim.after(
        SimDuration::from_millis(cfg.rebalance_every_ms),
        move |sim, w| {
            if tally.finished_clients.get() >= total {
                return;
            }
            gfs::client::maybe_rebalance(sim, w, fs);
            schedule_rebalance(sim, fs, cfg, tally);
        },
    );
}

/// Compile a trace corpus into storm coordinates: each op's path
/// components hash to a `(top, sub, file)` cell of the generated tree and
/// its kind maps onto the storm's selector arms. The mapping is
/// deterministic and order-preserving, so consecutive script entries keep
/// the corpus's directory locality.
fn corpus_script(
    ops: &[crate::trace::TraceOp],
    cfg: &StormConfig,
) -> Vec<(u32, u32, u32, u32)> {
    use crate::trace::TraceOpKind;
    let h = |s: &str| {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h = mix(h, u64::from(b));
        }
        h
    };
    ops.iter()
        .map(|op| {
            let p = op.path.trim_start_matches('/');
            let comps: Vec<&str> = p.split('/').collect();
            let t = (h(comps[0]) as u32) % cfg.top_dirs.max(1);
            let s = comps
                .get(1)
                .map_or(0, |c| (h(c) as u32) % cfg.sub_dirs.max(1));
            let f = comps.last().map_or(0, |c| {
                (h(c) as u32) % (cfg.files_per_sub + cfg.files_per_sub / 4 + 1).max(1)
            });
            let sel = match op.kind {
                TraceOpKind::Stat | TraceOpKind::Read => 0,
                TraceOpKind::Readdir => 30,
                TraceOpKind::Mkdir => 40,
                TraceOpKind::Create => 45,
                TraceOpKind::Write => 65,
                TraceOpKind::Rename => 85,
                TraceOpKind::Unlink => 90,
            };
            (t, s, f, sel)
        })
        .collect()
}

/// One step of a session's op chain; schedules the next step from its own
/// completion callback, so each session is a sequential stream of racing
/// RPCs. Progress-keyed faults are advanced here, so "at op N" thresholds
/// are evaluated against the shared per-point op counter between ops.
/// Legacy sessions delegate straight to the per-client paths; fan-in
/// sessions route metadata through batched envelopes.
#[allow(clippy::too_many_arguments)]
fn next_op(
    sim: &mut Sim<GfsWorld>,
    w: &mut GfsWorld,
    sess: Session,
    mut rng: StdRng,
    remaining: u32,
    cfg: StormConfig,
    tally: Rc<Tally>,
    inj: Option<Rc<RefCell<ProgressInjector>>>,
    lease: Option<Rc<LeaseGroup>>,
    script: Option<Rc<Vec<(u32, u32, u32, u32)>>>,
) {
    if let Some(inj) = &inj {
        inj.borrow_mut().advance(sim, w, tally.ops.get());
    }
    if remaining == 0 {
        tally.finished_clients.set(tally.finished_clients.get() + 1);
        tally.race_end.set(sim.now());
        if let Some(g) = lease {
            // Last chain in a leased group drains: surrender the subtree
            // lease, which replays the writeback journal to the manager
            // as bulk reconcile envelopes.
            g.left.set(g.left.get() - 1);
            if g.left.get() == 0 {
                g.sess.surrender_lease(sim, w, &g.top, move |sim, _w, r| {
                    r.expect("storm lease surrender");
                    tally.race_end.set(sim.now());
                });
            }
        }
        return;
    }
    let c = sess.ctx(w);
    let done = cfg.ops_per_client - remaining;
    let (t, s, f, sel) = match cfg.mix {
        // Uniform: a file path anywhere in the generated tree; the widened
        // file index makes stat/remove miss sometimes and create fresh
        // names sometimes.
        StormMix::Uniform => {
            let t = rng.gen::<u32>() % cfg.top_dirs;
            let s = rng.gen::<u32>() % cfg.sub_dirs;
            let f = rng.gen::<u32>() % (cfg.files_per_sub + cfg.files_per_sub / 4 + 1);
            (t, s, f, rng.gen::<u32>() % 100)
        }
        // Trace: a working directory pinned for 16-op windows, and op kinds
        // that move through untar → build → ls -R phases. The selector
        // values index into the same arms as the uniform distribution.
        StormMix::Trace => {
            let window = u64::from(done / 16);
            let h = mix(mix(0x7472_6163, u64::from(c.0)), window);
            let t = ((h >> 8) as u32) % cfg.top_dirs;
            let s = ((h >> 24) as u32) % cfg.sub_dirs;
            let frac = u64::from(done) * 100 / u64::from(cfg.ops_per_client.max(1));
            if frac < 40 {
                // untar: sequential fresh creates with a sprinkle of mkdir
                // and stat.
                let sel = match rng.gen::<u32>() % 10 {
                    0 => 40, // mkdir
                    1 => 0,  // stat
                    _ => 45, // create
                };
                (t, s, cfg.files_per_sub + done % 997, sel)
            } else if frac < 70 {
                // build: stat-heavy with small writes and the odd readdir.
                let sel = match rng.gen::<u32>() % 10 {
                    0..=3 => 0,  // stat
                    4..=7 => 65, // small write
                    _ => 30,     // readdir
                };
                (t, s, rng.gen::<u32>() % cfg.files_per_sub.max(1), sel)
            } else {
                // ls -R: readdir-dominated, stats of what it lists.
                let sel = if rng.gen::<u32>() % 10 < 6 { 30 } else { 0 };
                (t, s, rng.gen::<u32>() % cfg.files_per_sub.max(1), sel)
            }
        }
        // Corpus: walk the compiled trace script sequentially from this
        // client's offset — consecutive ops carry the corpus's real
        // directory locality, so the dentry cache sees what a captured
        // client trace would actually show it.
        StormMix::Corpus(_) => {
            let sc = script.as_ref().expect("corpus mix compiles a script");
            let idx = (u64::from(c.0)
                .wrapping_mul(101)
                .wrapping_add(u64::from(done))
                % sc.len() as u64) as usize;
            sc[idx]
        }
    };
    // Leased chains bias 3:1 toward their private writeback subtree, so
    // most of their traffic rides the delegate journal (zero manager
    // events); the rest keeps hammering the shared tree. Unleased chains
    // never draw here, keeping their rng stream byte-identical to PR 7.
    let top_str = match &lease {
        Some(g) if rng.gen::<u32>() % 4 != 0 => format!("w{:02}", g.wi),
        _ => format!("t{t:02}"),
    };
    let file_path = format!("/{top_str}/s{s:02}/f{f:04}");
    let dir_path = format!("/{top_str}/s{s:02}");
    let cont = move |sim: &mut Sim<GfsWorld>, w: &mut GfsWorld, rng: StdRng, tally: Rc<Tally>| {
        next_op(sim, w, sess, rng, remaining - 1, cfg, tally, inj, lease, script);
    };
    match sel {
        // stat — the resolve-heavy staple.
        0..=29 => {
            sess.stat(sim, w, &file_path, move |sim, w, r| {
                tally.op_result(30, r.as_ref().err());
                cont(sim, w, rng, tally);
            });
        }
        // readdir of the subdirectory.
        30..=39 => {
            sess.readdir(sim, w, &dir_path, move |sim, w, r| {
                let code = 31 ^ (r.as_ref().map_or(0, |names| names.len() as u64) << 16);
                tally.op_result(code, r.as_ref().err());
                cont(sim, w, rng, tally);
            });
        }
        // mkdir of a racing extra directory.
        40..=44 => {
            let d = rng.gen::<u32>() % 8;
            let path = format!("{dir_path}/d{d}");
            sess.mkdir(sim, w, &path, Owner::local(0, 0), move |sim, w, r| {
                tally.op_result(32, r.as_ref().err());
                cont(sim, w, rng, tally);
            });
        }
        // create: open-for-write (creates if absent) then close.
        45..=64 => {
            sess.open(
                sim,
                w,
                &file_path,
                OpenFlags::Write,
                Owner::local(0, 0),
                move |sim, w, r| match r {
                    Ok(h) => sess.close(sim, w, h, move |sim, w, r| {
                        tally.op_result(33, r.as_ref().err());
                        cont(sim, w, rng, tally);
                    }),
                    Err(e) => {
                        tally.op_result(33, Some(&e));
                        cont(sim, w, rng, tally);
                    }
                },
            );
        }
        // small-write: open, write `write_bytes`, close (write-behind +
        // token traffic + real NSD I/O on the flush). Scaled fan-in storms
        // keep this arm pure-metadata — a second create population — so
        // 10M ops stay on the envelope path.
        65..=84 => {
            if cfg.sessions_per_client > 1 {
                sess.open(
                    sim,
                    w,
                    &file_path,
                    OpenFlags::Write,
                    Owner::local(0, 0),
                    move |sim, w, r| match r {
                        Ok(h) => sess.close(sim, w, h, move |sim, w, r| {
                            tally.op_result(34, r.as_ref().err());
                            cont(sim, w, rng, tally);
                        }),
                        Err(e) => {
                            tally.op_result(34, Some(&e));
                            cont(sim, w, rng, tally);
                        }
                    },
                );
                return;
            }
            sess.open(
                sim,
                w,
                &file_path,
                OpenFlags::Write,
                Owner::local(0, 0),
                move |sim, w, r| match r {
                    Ok(h) => {
                        let data = pattern_bytes(0, cfg.write_bytes);
                        sess.write(sim, w, h, 0, data, move |sim, w, r| {
                            if let Err(e) = &r {
                                tally.op_result(34, Some(e));
                                // Still close the handle before moving on.
                            }
                            let wrote = r.is_ok();
                            sess.close(sim, w, h, move |sim, w, r| {
                                if wrote {
                                    tally.op_result(34, r.as_ref().err());
                                }
                                cont(sim, w, rng, tally);
                            });
                        });
                    }
                    Err(e) => {
                        tally.op_result(34, Some(&e));
                        cont(sim, w, rng, tally);
                    }
                },
            );
        }
        // cross-top rename — partitioned storms only. The target's top dir
        // is always different from the source's, and with the round-robin
        // placement map that makes every one of these a two-phase
        // cross-shard op (source shard coordinates, target shard commits).
        // With `managers == 1` the guard fails and the selector falls
        // through to unlink, preserving the single-manager event stream.
        85..=89 if cfg.managers > 1 && cfg.top_dirs > 1 => {
            let t2 = (t + 1 + rng.gen::<u32>() % (cfg.top_dirs - 1)) % cfg.top_dirs;
            let to = format!("/t{t2:02}/s{s:02}/f{f:04}");
            sess.rename(sim, w, &file_path, &to, move |sim, w, r| {
                tally.op_result(36, r.as_ref().err());
                cont(sim, w, rng, tally);
            });
        }
        // remove.
        _ => {
            sess.unlink(sim, w, &file_path, move |sim, w, r| {
                tally.op_result(35, r.as_ref().err());
                cont(sim, w, rng, tally);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_completes_counts_and_fscks() {
        let r = run_storm(&StormConfig::small());
        // 2 points × (4 + 16 + 512 tree ops + 8 × 24 race ops).
        assert!(r.ops > 1400, "ops {}", r.ops);
        assert!(r.errors > 0, "a race with misses must surface Err outcomes");
        // The per-kind breakdown is exhaustive, and a fault-free storm's
        // errors are all expected race outcomes — none gave up.
        assert_eq!(
            r.errors,
            r.err_not_found + r.err_exists + r.err_races + r.gave_up,
            "error breakdown must partition the error count"
        );
        assert_eq!(r.gave_up, 0, "fault-free storm must not time out");
        assert!(r.err_not_found > 0, "uniform probes must miss sometimes");
        assert!(r.fsck_clean, "storm left an inconsistent filesystem");
        assert!(r.events > 0);
        assert!(r.resolves > r.ops / 2, "resolves {}", r.resolves);
        // The name alphabet is tiny by design: interning collapses it.
        assert!(
            r.interned_names < 200,
            "interned {} names for a 2-point small storm",
            r.interned_names
        );
        assert!(
            r.dentry_hits > 0,
            "clients never hit their dentry caches during the race"
        );
    }

    #[test]
    fn trace_mix_concentrates_dentry_hits() {
        let uniform = run_storm(&StormConfig::small());
        let trace = run_storm(&StormConfig::small().with_mix(StormMix::Trace));
        assert!(trace.fsck_clean);
        assert!(
            trace.dentry_hit_rate() > uniform.dentry_hit_rate() + 0.05,
            "trace locality should lift the dentry hit rate measurably: \
             trace {:.3} vs uniform {:.3}",
            trace.dentry_hit_rate(),
            uniform.dentry_hit_rate()
        );
    }

    #[test]
    fn corpus_mix_carries_real_trace_locality() {
        // The real-corpus script must beat uniform probing on dentry
        // locality the same way the synthetic trace phases do — the
        // locality now comes from the generated untar/build paths, not a
        // hand-tuned working-directory schedule.
        let uniform = run_storm(&StormConfig::small());
        for corpus in crate::trace::TraceCorpus::ALL {
            let r = run_storm(&StormConfig::small().with_mix(StormMix::Corpus(corpus)));
            assert!(r.fsck_clean, "{corpus:?} storm left an inconsistent fs");
            assert_eq!(r.gave_up, 0);
            assert!(
                r.dentry_hit_rate() > uniform.dentry_hit_rate() + 0.05,
                "{corpus:?} locality should lift the dentry hit rate: \
                 corpus {:.3} vs uniform {:.3}",
                r.dentry_hit_rate(),
                uniform.dentry_hit_rate()
            );
        }
    }

    #[test]
    fn storm_is_bit_identical_across_sweep_thread_counts() {
        let cfg = StormConfig::small();
        let serial = run_storm_with_threads(&cfg, 1);
        let parallel = run_storm_with_threads(&cfg, 8);
        assert_eq!(serial, parallel);
        // And across repeated runs at the same thread count.
        assert_eq!(parallel, run_storm_with_threads(&cfg, 8));
    }

    #[test]
    fn flyweight_storm_batches_envelopes_and_fscks() {
        // 2 points × 8 contexts × 25 sessions = 400 flyweight sessions.
        let cfg = StormConfig::small().with_sessions_per_client(25);
        let r = run_storm(&cfg);
        assert_eq!(r.sessions, cfg.total_sessions(), "sessions {}", r.sessions);
        assert_eq!(
            r.ops,
            u64::from(cfg.points) * cfg.tree_ops() + u64::from(cfg.points) * cfg.race_ops(),
            "every chain must drain"
        );
        assert!(r.fsck_clean, "flyweight storm left an inconsistent fs");
        assert_eq!(r.gave_up, 0);
        assert_eq!(r.invariant_violations, 0);
        // The whole point: many ops per manager message. Race ops all ride
        // envelopes (plus close-releases), in far fewer messages.
        let race = u64::from(cfg.points) * cfg.race_ops();
        assert!(r.envelope_ops >= race, "envelope ops {} < race {race}", r.envelope_ops);
        assert!(
            r.envelopes * 4 < r.envelope_ops,
            "batching too thin: {} envelopes for {} ops",
            r.envelopes,
            r.envelope_ops
        );
    }

    #[test]
    fn flyweight_storm_is_bit_identical_across_sweep_thread_counts() {
        let cfg = StormConfig::small().with_sessions_per_client(25);
        let serial = run_storm_with_threads(&cfg, 1);
        let parallel = run_storm_with_threads(&cfg, 8);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn partitioned_storm_crosses_shards_and_fscks() {
        // 4 manager shards over 4 top dirs: every cross-top rename is a
        // two-phase op, and every chain still drains exactly once.
        let cfg = StormConfig::small()
            .with_sessions_per_client(25)
            .with_managers(4);
        let r = run_storm(&cfg);
        assert_eq!(
            r.ops,
            u64::from(cfg.points) * cfg.tree_ops() + u64::from(cfg.points) * cfg.race_ops(),
            "every chain must drain exactly once under partitioning"
        );
        assert!(r.fsck_clean, "partitioned storm left an inconsistent fs");
        assert_eq!(r.gave_up, 0);
        assert_eq!(r.invariant_violations, 0);
        assert!(
            r.cross_shard_ops > 0,
            "the rename arm must exercise two-phase cross-shard commits"
        );
        assert_eq!(
            r.errors,
            r.err_not_found + r.err_exists + r.err_races + r.gave_up
        );
    }

    #[test]
    fn partitioned_storm_is_bit_identical_across_sweep_thread_counts() {
        let cfg = StormConfig::small()
            .with_sessions_per_client(25)
            .with_managers(4);
        let serial = run_storm_with_threads(&cfg, 1);
        let parallel = run_storm_with_threads(&cfg, 8);
        assert_eq!(serial, parallel);
        assert_eq!(parallel, run_storm_with_threads(&cfg, 8));
    }

    #[test]
    fn delegated_storm_reconciles_and_rebalances_live() {
        // Leased contexts queue mutations in local delegate journals and
        // reconcile them as bulk replay envelopes; the in-storm rebalance
        // policy migrates hot subtrees while the race is still running.
        // Every chain must still drain exactly once and the tree must fsck.
        let cfg = StormConfig::small()
            .with_sessions_per_client(25)
            .with_managers(4)
            .with_leases(2)
            .with_rebalance_every(2);
        let r = run_storm(&cfg);
        assert_eq!(
            r.ops,
            u64::from(cfg.points) * cfg.tree_ops() + u64::from(cfg.points) * cfg.race_ops(),
            "every chain must drain exactly once under delegation"
        );
        assert!(r.fsck_clean, "delegated storm left an inconsistent fs");
        assert_eq!(r.gave_up, 0);
        assert_eq!(r.invariant_violations, 0);
        assert!(r.delegated_ops > 0, "leased contexts must take the writeback path");
        assert!(
            r.reconcile_ops > 0,
            "surrender must replay journaled mutations through the manager"
        );
        assert_eq!(
            r.lease_acquires,
            u64::from(cfg.points) * u64::from(cfg.effective_lease_contexts()),
            "one subtree lease per leased context"
        );
        assert!(
            r.rebalance_migrations >= 1,
            "the in-storm policy must migrate at least one hot subtree"
        );
    }

    #[test]
    fn delegated_storm_is_bit_identical_across_sweep_thread_counts() {
        let cfg = StormConfig::small()
            .with_sessions_per_client(25)
            .with_managers(4)
            .with_leases(2)
            .with_rebalance_every(2);
        let serial = run_storm_with_threads(&cfg, 1);
        let parallel = run_storm_with_threads(&cfg, 8);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn partitioned_storm_beats_single_manager_throughput() {
        // The whole point of the shards: the same op load drains in less
        // simulated time because four manager queues serve it. Modeled
        // throughput must scale, not just stay level. The comparison only
        // means anything when the manager is the bottleneck: the sharded
        // side batches behind a fixed gather window, so a lightly-loaded
        // storm is latency-bound and would measure the window, not the
        // queues. 400 sessions per context (the massive-storm shape) keeps
        // every manager saturated on both sides of the comparison.
        let base = StormConfig::small().with_sessions_per_client(400);
        let single = run_storm(&base);
        let sharded = run_storm(&base.with_managers(4));
        assert!(
            sharded.sim_ops_per_sec() > single.sim_ops_per_sec() * 2.0,
            "4-shard storm should out-run one manager by >2x: {:.0} vs {:.0} ops/s",
            sharded.sim_ops_per_sec(),
            single.sim_ops_per_sec()
        );
    }
}
