//! Deterministic parallel execution of independent simulation points.
//!
//! Figure sweeps (the Fig. 11 node counts, the disk-failure baseline/fault
//! pair, the recovery trio) are embarrassingly parallel: every point builds
//! its own fully isolated seeded world, so points share no state and each
//! one's result depends only on its own inputs. This module fans such
//! points across OS threads with a work-stealing index counter and returns
//! the results **in point order** — the merged output is bit-identical at
//! 1 thread and at N threads, because scheduling decides only *when* a
//! point runs, never *what* it computes.
//!
//! `std::thread` only — no new dependencies. Worlds themselves are not
//! `Send` (the event engine holds `Rc` callbacks), so each job builds,
//! runs, and tears down its world entirely on one thread and returns plain
//! `Send` data.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count for sweep execution: the `GFS_SWEEP_THREADS` environment
/// variable when set (a value of `1` forces the serial path), otherwise
/// the machine's available parallelism.
pub fn sweep_threads() -> usize {
    if let Ok(v) = std::env::var("GFS_SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Run `n` index-addressed jobs across up to `threads` workers and return
/// the results in index order. `job(i)` must depend only on `i` (each call
/// builds its own world); under that contract the output is independent of
/// thread count and scheduling. A panicking job propagates the panic.
pub fn run_indexed<T, F>(n: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return (0..n).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = job(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("sweep job did not produce a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_merge_in_index_order() {
        let out = run_indexed(17, 4, |i| i * i);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        assert_eq!(run_indexed(33, 1, f), run_indexed(33, 8, f));
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let out = run_indexed(64, 6, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<u32> = run_indexed(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }
}
