//! The 2005 production Global File System (paper §5, Figs. 9–11): 0.5 PB
//! of FastT100 SATA behind 64 dual-IA64 NSD servers (one GbE + one 2 Gb/s
//! FC HBA each), serving the SDSC machine room and the TeraGrid WAN.
//!
//! Paper results reproduced here:
//! * **Fig. 11** — MPI-IO scaling (128 MB blocks, 1 MB transfers) against
//!   node count inside the machine room: reads approach ~6 GB/s of an
//!   8 GB/s theoretical network ceiling; writes plateau distinctly lower
//!   ("the observed discrepancy ... is not yet understood"). In this model
//!   the write plateau *is* understood: it is the SATA RAID-5
//!   destage/parity ceiling of the DS4100 farm (ablation A4 removes it).
//! * **ANL remote mount** — "approximately 1.2 GB/s to all 32 nodes".

use crate::common::{NSD_SERVER_EFF, TCP_EFF};
use gfs::fscore::{DataMode, FsConfig};
use gfs::stream::{gfs_stream, StreamDir};
use gfs::world::{FsParams, GfsWorld, NsdBacking, WorldBuilder};
use gfs::types::{ClientId, FsId};
use simcore::{Bandwidth, Sim, SimDuration, SimTime, GBYTE, MBYTE};
use simsan::{FarmSpec, IoKind};
use std::cell::Cell;
use std::rc::Rc;

/// Transfer direction of a scaling run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Clients read from the GFS.
    Read,
    /// Clients write to the GFS.
    Write,
}

/// Scenario parameters.
#[derive(Clone, Debug)]
pub struct ProductionConfig {
    /// NSD server count (64 in the paper, each one GbE).
    pub nsd_servers: u32,
    /// Disk farm behind the servers.
    pub farm: FarmSpec,
    /// Per-client NIC goodput (DataStar/TG-cluster nodes on GbE).
    pub client_nic: Bandwidth,
    /// Machine-room one-way latency.
    pub lan_delay: SimDuration,
    /// Bytes each client moves in a scaling run.
    pub per_client_bytes: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProductionConfig {
    fn default() -> Self {
        ProductionConfig {
            nsd_servers: 64,
            farm: FarmSpec::production_2005(),
            client_nic: Bandwidth::gbit(1.0).scaled(TCP_EFF),
            lan_delay: SimDuration::from_micros(100),
            per_client_bytes: 4 * GBYTE,
            seed: 2005,
        }
    }
}

/// Result of one scaling point.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// Node count.
    pub nodes: u32,
    /// Direction measured.
    pub direction: Direction,
    /// Total bytes moved.
    pub bytes: u64,
    /// Makespan in seconds.
    pub seconds: f64,
    /// Simulation events executed producing this point (for the perf
    /// harness's events/sec reporting).
    pub events: u64,
    /// Page-pool and NSD coalescing counters for this point's world.
    pub data_path: crate::builder::DataPathStats,
}

impl ScalingPoint {
    /// Aggregate rate in MB/s (Fig. 11's y axis).
    pub fn aggregate_mbyte_per_sec(&self) -> f64 {
        self.bytes as f64 / self.seconds / MBYTE as f64
    }

    /// Aggregate rate in GB/s.
    pub fn aggregate_gbyte_per_sec(&self) -> f64 {
        self.bytes as f64 / self.seconds / GBYTE as f64
    }
}

/// Build the production world with `nodes` machine-room clients.
fn build(cfg: &ProductionConfig, nodes: u32) -> (Sim<GfsWorld>, GfsWorld, Vec<ClientId>, FsId) {
    let mut b = WorldBuilder::new(cfg.seed);
    b.key_bits(384);
    let sw = b.topo().node("mr-switch");
    let servers = b.topo().node("nsd-farm");
    // 64 NSD servers × GbE goodput × daemon efficiency: the effective
    // serving ceiling ("theoretical maximum of 8 GB/s" raw in the paper;
    // measured max "almost 6 GB/s").
    let serve_cap = Bandwidth::gbit(f64::from(cfg.nsd_servers))
        .scaled(TCP_EFF)
        .scaled(NSD_SERVER_EFF);
    b.topo().duplex_link(servers, sw, serve_cap, SimDuration::from_micros(50), "farm-nic");
    let storage = cfg.farm.attach(b.topo(), servers, "prod");
    let cluster = b.cluster("sdsc.teragrid");
    let fs = b.filesystem(
        cluster,
        FsParams {
            config: FsConfig {
                name: "gpfs-wan".into(),
                block_size: 1 << 20,
                nsd_blocks: 1 << 26,
                nsd_count: cfg.nsd_servers,
                data_mode: DataMode::Synthetic,
            },
            manager: servers,
            managers: 1,
            nsd_servers: vec![servers],
            storage_nodes: vec![storage],
            backing: vec![NsdBacking::Ideal {
                rate: Bandwidth::gbyte(1.0).bytes_per_sec(),
                latency: SimDuration::from_micros(200),
            }],
            exported: true,
        },
    );
    let mut clients = Vec::new();
    for i in 0..nodes {
        let n = b.topo().node(format!("node-{i}"));
        b.topo()
            .duplex_link(n, sw, cfg.client_nic, cfg.lan_delay, format!("nic-{i}"));
        clients.push(b.client(cluster, n, 16));
    }
    let (sim, w) = b.build();
    (sim, w, clients, fs)
}

/// Run one Fig. 11 point: `nodes` clients each stream
/// `per_client_bytes` in `direction`; aggregate rate = total/makespan.
pub fn run_scaling_point(cfg: ProductionConfig, nodes: u32, direction: Direction) -> ScalingPoint {
    assert!(nodes > 0);
    let (mut sim, mut w, clients, fs) = build(&cfg, nodes);
    let dir = match direction {
        Direction::Read => StreamDir::Read,
        Direction::Write => StreamDir::Write,
    };
    let remaining = Rc::new(Cell::new(nodes));
    let finish = Rc::new(Cell::new(0u64));
    for &c in &clients {
        let remaining = remaining.clone();
        let finish = finish.clone();
        gfs_stream(
            &mut sim,
            &mut w,
            c,
            fs,
            cfg.per_client_bytes,
            dir,
            1,
            move |sim, _w| {
                remaining.set(remaining.get() - 1);
                if remaining.get() == 0 {
                    finish.set(sim.now().as_nanos());
                }
            },
        );
    }
    sim.run(&mut w);
    assert_eq!(remaining.get(), 0, "scaling run did not complete");
    ScalingPoint {
        nodes,
        direction,
        bytes: u64::from(nodes) * cfg.per_client_bytes,
        seconds: SimTime::from_nanos(finish.get()).as_secs_f64(),
        events: sim.executed(),
        data_path: crate::builder::data_path_stats_of(&w),
    }
}

/// Run the full Fig. 11 sweep for both directions.
pub fn run_fig11(cfg: &ProductionConfig, node_counts: &[u32]) -> Vec<(ScalingPoint, ScalingPoint)> {
    run_fig11_with_threads(cfg, node_counts, crate::parallel::sweep_threads())
}

/// [`run_fig11`] with an explicit worker count. Every (node count,
/// direction) pair is an isolated seeded world, so the merged output is
/// bit-identical for any `threads` value — the determinism tests pin the
/// 1-thread vs N-thread equality.
pub fn run_fig11_with_threads(
    cfg: &ProductionConfig,
    node_counts: &[u32],
    threads: usize,
) -> Vec<(ScalingPoint, ScalingPoint)> {
    // Fan out the read and write halves of every point as separate jobs
    // (2× the parallelism of per-count jobs), then pair them back up.
    let points = crate::parallel::run_indexed(node_counts.len() * 2, threads, |i| {
        let n = node_counts[i / 2];
        let direction = if i % 2 == 0 {
            Direction::Read
        } else {
            Direction::Write
        };
        run_scaling_point(cfg.clone(), n, direction)
    });
    points
        .chunks_exact(2)
        .map(|pair| (pair[0], pair[1]))
        .collect()
}

/// The A4 ablation: same sweep with the RAID parity/destage penalty
/// removed (`raid_write_factor = 1.0`).
pub fn fig11_config_no_parity_penalty() -> ProductionConfig {
    let mut cfg = ProductionConfig::default();
    cfg.farm.raid_write_factor = 1.0;
    cfg
}

/// The paper's §8 expansion plan, projected: (1) grow the disk to a full
/// petabyte (64 DS4100 trays), (2) add a second GbE to every NSD server
/// ("increasing the aggregate bandwidth to 128 Gb/s"), (3) the second FC
/// HBA feeds the HSM path and does not change client-facing rates.
pub fn expansion_2006_config() -> ProductionConfig {
    let mut cfg = ProductionConfig::default();
    cfg.farm.arrays = 64; // 1 PB of trays
    // Second GbE per server: double the serving NIC capacity. We model it
    // by doubling the server count in the NIC-capacity formula (the
    // physical servers stay at 64; capacity is what matters here).
    cfg.nsd_servers = 128;
    cfg
}

/// ANL remote-mount measurement (§5): `nodes` clients at Argonne read
/// over the TeraGrid WAN. Returns the aggregate rate point.
pub fn run_anl(nodes: u32) -> ScalingPoint {
    let cfg = ProductionConfig::default();
    let mut b = WorldBuilder::new(cfg.seed + 1);
    b.key_bits(384);
    let sw = b.topo().node("mr-switch");
    let servers = b.topo().node("nsd-farm");
    let serve_cap = Bandwidth::gbit(f64::from(cfg.nsd_servers))
        .scaled(TCP_EFF)
        .scaled(NSD_SERVER_EFF);
    b.topo().duplex_link(servers, sw, serve_cap, SimDuration::from_micros(50), "farm-nic");
    let storage = cfg.farm.attach(b.topo(), servers, "prod");
    // WAN: SDSC 30 Gb/s site link -> backbone -> ANL's 10 GbE share.
    let la = b.topo().node("la-hub");
    let chi = b.topo().node("chicago-hub");
    let anl_sw = b.topo().node("anl-sw");
    b.topo().duplex_link(
        sw,
        la,
        Bandwidth::gbit(30.0).scaled(TCP_EFF),
        SimDuration::from_millis(2),
        "sdsc-site",
    );
    b.topo().duplex_link(
        la,
        chi,
        Bandwidth::gbit(40.0).scaled(TCP_EFF),
        SimDuration::from_millis(25),
        "backbone",
    );
    // ANL's share of connectivity for this mount: one 10 GbE path.
    b.topo().duplex_link(
        chi,
        anl_sw,
        Bandwidth::gbit(10.0).scaled(TCP_EFF),
        SimDuration::from_millis(1),
        "anl-site",
    );
    let cluster = b.cluster("sdsc.teragrid");
    let fs = b.filesystem(
        cluster,
        FsParams {
            config: FsConfig {
                name: "gpfs-wan".into(),
                block_size: 1 << 20,
                nsd_blocks: 1 << 26,
                nsd_count: cfg.nsd_servers,
                data_mode: DataMode::Synthetic,
            },
            manager: servers,
            managers: 1,
            nsd_servers: vec![servers],
            storage_nodes: vec![storage],
            backing: vec![NsdBacking::Ideal {
                rate: Bandwidth::gbyte(1.0).bytes_per_sec(),
                latency: SimDuration::from_micros(200),
            }],
            exported: true,
        },
    );
    let mut clients = Vec::new();
    for i in 0..nodes {
        let n = b.topo().node(format!("anl-{i}"));
        b.topo().duplex_link(
            n,
            anl_sw,
            cfg.client_nic,
            SimDuration::from_micros(100),
            format!("anl-nic-{i}"),
        );
        clients.push(b.client(cluster, n, 16));
    }
    let (mut sim, mut w) = b.build();
    let per_client = 2 * GBYTE;
    let remaining = Rc::new(Cell::new(nodes));
    let finish = Rc::new(Cell::new(0u64));
    for &c in &clients {
        let remaining = remaining.clone();
        let finish = finish.clone();
        gfs_stream(&mut sim, &mut w, c, fs, per_client, StreamDir::Read, 1, move |sim, _w| {
            remaining.set(remaining.get() - 1);
            if remaining.get() == 0 {
                finish.set(sim.now().as_nanos());
            }
        });
    }
    sim.run(&mut w);
    ScalingPoint {
        nodes,
        direction: Direction::Read,
        bytes: u64::from(nodes) * per_client,
        seconds: SimTime::from_nanos(finish.get()).as_secs_f64(),
        events: sim.executed(),
        data_path: crate::builder::data_path_stats_of(&w),
    }
}

/// Latency-tolerance sweep (ablation A1): one well-provisioned client
/// streams through a 10 Gb/s WAN path of varying RTT; returns
/// (rtt_ms, MB/s) pairs. With GPFS-style deep windows the curve stays
/// flat; with a small window it collapses — the SC'02 question answered.
pub fn run_latency_sweep(rtts_ms: &[u64], window: u64) -> Vec<(u64, f64)> {
    rtts_ms
        .iter()
        .map(|&rtt| {
            let mut b = WorldBuilder::new(77);
            b.key_bits(384);
            let client = b.topo().node("client");
            let servers = b.topo().node("servers");
            b.topo().duplex_link(
                client,
                servers,
                Bandwidth::gbit(10.0).scaled(TCP_EFF),
                SimDuration::from_millis(rtt / 2),
                "wan",
            );
            let cl = b.cluster("lat");
            let fs = b.filesystem(
                cl,
                FsParams {
                    config: FsConfig {
                        name: "fs".into(),
                        block_size: 1 << 20,
                        nsd_blocks: 1 << 26,
                        nsd_count: 32,
                        data_mode: DataMode::Synthetic,
                    },
                    manager: servers,
                    managers: 1,
                    nsd_servers: vec![servers],
                    storage_nodes: vec![],
                    backing: vec![NsdBacking::Ideal {
                        rate: Bandwidth::gbyte(4.0).bytes_per_sec(),
                        latency: SimDuration::from_micros(100),
                    }],
                    exported: true,
                },
            );
            let c = b.client(cl, client, 16);
            let (mut sim, mut w) = b.build();
            // Per-connection window under test; 32 NSD connections.
            w.costs.flow_window = window;
            let bytes = 20 * GBYTE;
            let finish = Rc::new(Cell::new(0u64));
            let f2 = finish.clone();
            gfs_stream(&mut sim, &mut w, c, fs, bytes, StreamDir::Read, 1, move |sim, _w| {
                f2.set(sim.now().as_nanos())
            });
            sim.run(&mut w);
            let secs = SimTime::from_nanos(finish.get()).as_secs_f64();
            (rtt, bytes as f64 / secs / MBYTE as f64)
        })
        .collect()
}

/// What bounds the farm in each direction (for EXPERIMENTS.md reporting).
pub fn bottleneck_report(cfg: &ProductionConfig) -> (f64, f64, f64) {
    let net = Bandwidth::gbit(f64::from(cfg.nsd_servers))
        .scaled(TCP_EFF)
        .scaled(NSD_SERVER_EFF)
        .bytes_per_sec()
        / GBYTE as f64;
    let read = cfg.farm.effective_bandwidth(IoKind::Read).bytes_per_sec() / GBYTE as f64;
    let write = cfg.farm.effective_bandwidth(IoKind::Write).bytes_per_sec() / GBYTE as f64;
    (net, read, write)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_read_plateaus_near_6_gbs() {
        let p = run_scaling_point(ProductionConfig::default(), 96, Direction::Read);
        let gbs = p.aggregate_gbyte_per_sec();
        assert!(
            (5.5..6.3).contains(&gbs),
            "96-node read {gbs:.2} GB/s (paper: almost 6)"
        );
    }

    #[test]
    fn fig11_write_plateaus_lower() {
        let r = run_scaling_point(ProductionConfig::default(), 96, Direction::Read);
        let w = run_scaling_point(ProductionConfig::default(), 96, Direction::Write);
        let (rg, wg) = (r.aggregate_gbyte_per_sec(), w.aggregate_gbyte_per_sec());
        assert!(
            wg < 0.75 * rg,
            "write {wg:.2} GB/s not clearly below read {rg:.2} GB/s"
        );
        assert!((3.0..4.6).contains(&wg), "write plateau {wg:.2} GB/s");
    }

    #[test]
    fn fig11_small_counts_scale_linearly() {
        let cfg = ProductionConfig::default();
        let p1 = run_scaling_point(cfg.clone(), 1, Direction::Read);
        let p8 = run_scaling_point(cfg, 8, Direction::Read);
        let r1 = p1.aggregate_mbyte_per_sec();
        let r8 = p8.aggregate_mbyte_per_sec();
        // One client ≈ its NIC goodput; 8 clients ≈ 8×.
        assert!((100.0..120.0).contains(&r1), "1 node = {r1:.0} MB/s");
        assert!(
            (r8 / r1 - 8.0).abs() < 0.5,
            "8-node speedup {:.2} not ~8x",
            r8 / r1
        );
    }

    #[test]
    fn a4_removing_parity_penalty_closes_the_gap() {
        let cfg = fig11_config_no_parity_penalty();
        let r = run_scaling_point(cfg.clone(), 96, Direction::Read);
        let w = run_scaling_point(cfg, 96, Direction::Write);
        let (rg, wg) = (r.aggregate_gbyte_per_sec(), w.aggregate_gbyte_per_sec());
        assert!(
            (wg - rg).abs() < 0.1 * rg,
            "without parity penalty write {wg:.2} should match read {rg:.2}"
        );
    }

    #[test]
    fn anl_sees_about_1_2_gbyte_per_sec() {
        let p = run_anl(32);
        let gbs = p.aggregate_gbyte_per_sec();
        assert!(
            (1.0..1.3).contains(&gbs),
            "ANL 32-node aggregate {gbs:.2} GB/s (paper ~1.2)"
        );
    }

    #[test]
    fn latency_sweep_flat_with_deep_windows() {
        let pts = run_latency_sweep(&[1, 80, 160], 16 * MBYTE);
        let at1 = pts[0].1;
        let at160 = pts[2].1;
        assert!(
            at160 > 0.9 * at1,
            "deep-window rate at 160ms ({at160:.0}) collapsed vs 1ms ({at1:.0})"
        );
    }

    #[test]
    fn latency_sweep_collapses_with_small_windows() {
        let pts = run_latency_sweep(&[1, 80], 256 * 1024);
        let at1 = pts[0].1;
        let at80 = pts[1].1;
        assert!(
            at80 < 0.4 * at1,
            "small-window rate at 80ms ({at80:.0}) should collapse vs 1ms ({at1:.0})"
        );
    }

    #[test]
    fn expansion_2006_doubles_the_read_ceiling() {
        // §8: doubled NICs move the network ceiling from ~6 to ~12 GB/s;
        // the petabyte farm keeps reads network-bound.
        let p = run_scaling_point(expansion_2006_config(), 192, Direction::Read);
        let gbs = p.aggregate_gbyte_per_sec();
        assert!(
            (11.0..12.5).contains(&gbs),
            "expanded read plateau {gbs:.2} GB/s (expect ~12)"
        );
        // Writes double too (64 trays instead of 32).
        let w = run_scaling_point(expansion_2006_config(), 192, Direction::Write);
        let wgbs = w.aggregate_gbyte_per_sec();
        assert!(
            (7.0..8.5).contains(&wgbs),
            "expanded write plateau {wgbs:.2} GB/s (expect ~7.7)"
        );
    }

    #[test]
    fn bottleneck_report_orders_ceilings() {
        let (net, read, write) = bottleneck_report(&ProductionConfig::default());
        // Network below farm read (reads are network-bound), farm write
        // below network (writes are media-bound): Fig. 11's structure.
        assert!(net < read, "net {net:.1} should be < farm read {read:.1}");
        assert!(write < net, "farm write {write:.1} should be < net {net:.1}");
    }
}
