//! SC'03 (paper §3, Figs. 3–5): the first *native* WAN-GPFS — pre-release
//! IBM GPFS served from 40 dual-IA64 nodes in the SDSC booth at Phoenix,
//! mounted across the TeraGrid at SDSC and NCSA through a 10 GbE SciNet
//! uplink.
//!
//! Paper result (Fig. 5): peak 8.96 Gb/s on the 10 Gb/s link, over 1 GB/s
//! sustained, and a visible dip when the visualization application "ran
//! out of data and was restarted".
//!
//! Sequence modeled: data produced at SDSC is copied onto the show-floor
//! filesystem; visualization clients at SDSC and NCSA then read it back
//! until they exhaust their input, restart after a gap, and continue.

use crate::common::{self, TCP_EFF};
use gfs::fscore::{DataMode, FsConfig};
use gfs::stream::{gfs_stream, StreamDir};
use gfs::world::{FsParams, GfsWorld, WorldBuilder};
use gfs::types::{ClientId, FsId};
use simcore::{Bandwidth, Sim, SimDuration, SimTime, Summary, TimeSeries, GBIT};
use simnet::Network;

/// Scenario parameters.
#[derive(Clone, Debug)]
pub struct Sc03Config {
    /// NSD server nodes in the booth (40 in the paper).
    pub booth_servers: u32,
    /// Total run length.
    pub duration: SimDuration,
    /// When the visualization input is sized to run dry (the Fig. 5 dip).
    pub dip_at: SimDuration,
    /// Restart gap after running dry.
    pub restart_gap: SimDuration,
    /// SciNet uplink efficiency (link-level goodput fraction).
    pub uplink_eff: f64,
    /// Per-tick capacity wander of the loaded uplink.
    pub uplink_jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Sc03Config {
    fn default() -> Self {
        Sc03Config {
            booth_servers: 40,
            duration: SimDuration::from_secs(90),
            dip_at: SimDuration::from_secs(55),
            restart_gap: SimDuration::from_secs(4),
            uplink_eff: 0.885,
            uplink_jitter: 0.012,
            seed: 2003,
        }
    }
}

/// Scenario output.
#[derive(Clone, Debug)]
pub struct Sc03Result {
    /// Gb/s through the SciNet uplink (both directions summed) per second
    /// — the Fig. 5 curve.
    pub series: TimeSeries,
    /// Peak rate, Gb/s.
    pub peak_gbs: f64,
    /// Steady mean before the dip, Gb/s.
    pub steady_gbs: f64,
    /// Minimum during the dip window, Gb/s.
    pub dip_gbs: f64,
    /// Paper values for comparison.
    pub paper_peak_gbs: f64,
}

struct Nodes {
    booth_client_src: ClientId,
    sdsc_vis: ClientId,
    ncsa_vis: ClientId,
    fs: FsId,
}

/// Run the SC'03 demonstration.
pub fn run(cfg: Sc03Config) -> Sc03Result {
    let mut b = WorldBuilder::new(cfg.seed);
    b.key_bits(384);

    // Booth: server farm node behind the booth switch; SciNet uplink to
    // the TeraGrid hub; SDSC and NCSA at 30 Gb/s site links.
    let servers = b.topo().node("booth-servers");
    let booth_sw = b.topo().node("booth-sw");
    let hub = b.topo().node("tg-hub");
    let sdsc = b.topo().node("sdsc");
    let ncsa = b.topo().node("ncsa");
    // 40 servers × GbE into the booth switch.
    b.topo().duplex_link(
        servers,
        booth_sw,
        Bandwidth::gbit(f64::from(cfg.booth_servers)).scaled(TCP_EFF),
        SimDuration::from_micros(30),
        "booth-lan",
    );
    let (up, down) = b.topo().duplex_link(
        booth_sw,
        hub,
        Bandwidth::gbit(10.0).scaled(cfg.uplink_eff),
        SimDuration::from_millis(common::delay_ms::SHOWFLOOR_HUB),
        "scinet",
    );
    b.topo().set_jitter(up, cfg.uplink_jitter);
    b.topo().set_jitter(down, cfg.uplink_jitter);
    b.topo().duplex_link(
        hub,
        sdsc,
        Bandwidth::gbit(30.0).scaled(TCP_EFF),
        SimDuration::from_millis(common::delay_ms::SDSC_LA + common::delay_ms::LA_CHICAGO),
        "sdsc-site",
    );
    b.topo().duplex_link(
        hub,
        ncsa,
        Bandwidth::gbit(30.0).scaled(TCP_EFF),
        SimDuration::from_millis(common::delay_ms::CHICAGO_NCSA + 10),
        "ncsa-site",
    );

    let booth = b.cluster("sc03-booth");
    let fs = b.filesystem(
        booth,
        FsParams::ideal(
            FsConfig {
                name: "gpfs-sc03".into(),
                block_size: 1 << 20,
                nsd_blocks: 1 << 24,
                nsd_count: cfg.booth_servers,
                data_mode: DataMode::Synthetic,
            },
            servers,
            vec![servers],
            // Booth disk (StorCloud-era FC): comfortably above the uplink.
            Bandwidth::gbyte(3.0),
            SimDuration::from_micros(200),
        ),
    );
    // "Clients": the SDSC data producer, and visualization consumers at
    // SDSC and NCSA (each an aggregate of the 32 IA64 vis nodes).
    let src = b.client(booth, sdsc, 16);
    let vis_sdsc = b.client(booth, sdsc, 16);
    let vis_ncsa = b.client(booth, ncsa, 16);
    let (mut sim, mut w) = b.build();

    Network::enable_monitoring(&mut sim, &mut w, SimDuration::from_secs(1));

    let nodes = Nodes {
        booth_client_src: src,
        sdsc_vis: vis_sdsc,
        ncsa_vis: vis_ncsa,
        fs,
    };

    // Uplink goodput estimate for sizing phases.
    let uplink = 10.0 * GBIT * cfg.uplink_eff;

    // Visualization input sized to run dry at `dip_at`, then a refill
    // larger than the remaining window.
    struct PhaseCfg {
        vis_bytes_until_dip: u64,
        restart_gap: SimDuration,
        refill_bytes: u64,
    }
    let vis_window = (cfg.dip_at.as_secs_f64() - 20.0).max(5.0);
    let phase = PhaseCfg {
        vis_bytes_until_dip: (uplink * vis_window) as u64,
        restart_gap: cfg.restart_gap,
        refill_bytes: (uplink * cfg.duration.as_secs_f64()) as u64,
    };

    // Phase 1: copy data from SDSC onto the booth filesystem (uplink-bound
    // writes) for the first ~20 s.
    let copy_bytes = (uplink * 20.0) as u64;
    gfs_stream(
        &mut sim,
        &mut w,
        nodes.booth_client_src,
        nodes.fs,
        copy_bytes,
        StreamDir::Write,
        0,
        move |sim, w| start_visualization(sim, w, nodes, phase),
    );

    fn start_visualization(sim: &mut Sim<GfsWorld>, w: &mut GfsWorld, nodes: Nodes, p: PhaseCfg) {
        // Both sites read concurrently; together they drain the uplink.
        // NCSA's share mirrors SDSC's ("rates ... virtually identical").
        let half = p.vis_bytes_until_dip / 2;
        let gap = p.restart_gap;
        let refill = p.refill_bytes;
        let sdsc_vis = nodes.sdsc_vis;
        let ncsa_vis = nodes.ncsa_vis;
        let fs = nodes.fs;
        gfs_stream(sim, w, sdsc_vis, fs, half, StreamDir::Read, 0, move |sim, _w| {
            // Ran out of data: restart after the gap with refilled input.
            sim.after(gap, move |sim, w| {
                gfs_stream(sim, w, sdsc_vis, fs, refill / 2, StreamDir::Read, 0, |_s, _w| {});
            });
        });
        gfs_stream(sim, w, ncsa_vis, fs, half, StreamDir::Read, 0, move |sim, _w| {
            sim.after(gap, move |sim, w| {
                gfs_stream(sim, w, ncsa_vis, fs, refill / 2, StreamDir::Read, 0, |_s, _w| {});
            });
        });
    }

    let horizon = SimTime::ZERO + cfg.duration;
    sim.set_horizon(horizon);
    sim.run(&mut w);
    let all = w.net.finish_monitoring(horizon);
    let mut series = common::duplex_sum(&all, "scinet");
    for p in &mut series.points {
        p.value /= GBIT; // report Gb/s like the paper's axis
    }
    let dip_s = cfg.dip_at.as_secs_f64() as u64;
    let steady = Summary::of(
        &series
            .points
            .iter()
            .filter(|p| p.t > SimTime::from_secs(3) && p.t < SimTime::from_secs(dip_s - 3))
            .map(|p| p.value)
            .collect::<Vec<_>>(),
    );
    let dip = series
        .points
        .iter()
        .filter(|p| {
            p.t >= SimTime::from_secs(dip_s.saturating_sub(2)) && p.t <= SimTime::from_secs(dip_s + 6)
        })
        .map(|p| p.value)
        .fold(f64::INFINITY, f64::min);
    Sc03Result {
        peak_gbs: series.max(),
        steady_gbs: steady.mean,
        dip_gbs: dip,
        series,
        paper_peak_gbs: 8.96,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_fig5_shape() {
        let r = run(Sc03Config::default());
        // Peak close to the paper's 8.96 Gb/s on a 10 GbE link.
        assert!(
            (r.peak_gbs - r.paper_peak_gbs).abs() < 0.25,
            "peak {:.2} Gb/s vs paper {:.2}",
            r.peak_gbs,
            r.paper_peak_gbs
        );
        // Sustained comfortably above 1 GB/s (8 Gb/s).
        assert!(
            r.steady_gbs > 8.0,
            "steady {:.2} Gb/s not > 8 (1 GB/s)",
            r.steady_gbs
        );
        // The visualization-restart dip is visible and deep.
        assert!(
            r.dip_gbs < 0.5 * r.steady_gbs,
            "dip {:.2} Gb/s not visible against steady {:.2}",
            r.dip_gbs,
            r.steady_gbs
        );
    }

    #[test]
    fn traffic_recovers_after_dip() {
        let r = run(Sc03Config::default());
        // Average over the post-restart tail is back near steady state.
        let tail = common::steady_mean(&r.series, 65, 88);
        assert!(
            tail > 0.9 * r.steady_gbs,
            "post-dip tail {:.2} vs steady {:.2}",
            tail,
            r.steady_gbs
        );
    }

    #[test]
    fn deterministic() {
        let a = run(Sc03Config::default());
        let b = run(Sc03Config::default());
        assert_eq!(a.series.points, b.series.points);
    }
}
