//! Ablation studies isolating the design choices the paper's results rest
//! on (DESIGN.md experiments A1–A4; A1 lives in
//! [`crate::production::run_latency_sweep`], A4 in
//! [`crate::production::fig11_config_no_parity_penalty`]).
//!
//! * **A2 — GFS direct access vs GridFTP staging.** The paper's §1: NVO is
//!   "used more as a database", so moving all 50 TB to every site loses to
//!   reading the needed pieces in place. The crossover against the
//!   fraction of the dataset actually touched quantifies the argument.
//! * **A3 — block size × request pipelining.** GPFS's large blocks and
//!   deep prefetch are what let a WAN mount saturate; request-at-a-time
//!   I/O with small blocks collapses with distance.

use crate::common::TCP_EFF;
use gfs::stream::{run_stream, StreamSpec};
use gfs::world::{GfsWorld, WorldBuilder};
use gfs_auth::cipher::CipherMode;
use gridftp::TransferSpec;
use simcore::{Bandwidth, Sim, SimDuration, SimTime, GBYTE, MBYTE};
use simnet::NodeId;
use std::cell::Cell;
use std::rc::Rc;

/// One point of the A2 comparison.
#[derive(Clone, Copy, Debug)]
pub struct A2Point {
    /// Fraction of the dataset the application touches.
    pub fraction: f64,
    /// Time to completion using direct GFS partial access, seconds.
    pub gfs_seconds: f64,
    /// Time using GridFTP staging (move everything, then read locally),
    /// seconds.
    pub gridftp_seconds: f64,
}

/// A2 configuration.
#[derive(Clone, Debug)]
pub struct A2Config {
    /// Dataset size (50 TB in the paper; scale down for quick runs).
    pub dataset_bytes: u64,
    /// WAN rate between the sites.
    pub wan: Bandwidth,
    /// One-way WAN delay.
    pub one_way: SimDuration,
    /// Local disk rate at the compute site (for post-staging reads).
    pub local_rate: Bandwidth,
}

impl Default for A2Config {
    fn default() -> Self {
        A2Config {
            dataset_bytes: 1_000 * GBYTE, // 1 TB: a 1/50-scale NVO
            wan: Bandwidth::gbit(10.0).scaled(TCP_EFF),
            one_way: SimDuration::from_millis(30),
            local_rate: Bandwidth::gbyte(2.0),
        }
    }
}

fn wan_world(cfg: &A2Config) -> (Sim<GfsWorld>, GfsWorld, NodeId, NodeId) {
    let mut b = WorldBuilder::new(42);
    b.key_bits(384);
    let data_site = b.topo().node("data-site");
    let compute_site = b.topo().node("compute-site");
    b.topo()
        .duplex_link(data_site, compute_site, cfg.wan, cfg.one_way, "wan");
    b.cluster("a2");
    let (sim, w) = b.build();
    (sim, w, data_site, compute_site)
}

/// Run A2 across access fractions.
pub fn gfs_vs_gridftp(cfg: &A2Config, fractions: &[f64]) -> Vec<A2Point> {
    fractions
        .iter()
        .map(|&fraction| {
            assert!((0.0..=1.0).contains(&fraction));
            let touched = ((cfg.dataset_bytes as f64 * fraction) as u64).max(MBYTE);

            // GFS: read just the touched bytes across the WAN with deep
            // pipelining.
            let (mut sim, mut w, data, compute) = wan_world(cfg);
            let t = Rc::new(Cell::new(0u64));
            let t2 = t.clone();
            run_stream(
                &mut sim,
                &mut w,
                StreamSpec::read(compute, vec![data], touched).with_window(256 * MBYTE),
                move |sim, _w| t2.set(sim.now().as_nanos()),
            );
            sim.run(&mut w);
            let gfs_seconds = SimTime::from_nanos(t.get()).as_secs_f64();

            // GridFTP: stage the WHOLE dataset, then read the touched
            // bytes from local disk.
            let (mut sim, mut w, data, compute) = wan_world(cfg);
            let t = Rc::new(Cell::new(0u64));
            let t2 = t.clone();
            let spec = TransferSpec::new(data, compute, cfg.dataset_bytes)
                .with_streams(8)
                .with_window(32 * MBYTE);
            gridftp::transfer(&mut sim, &mut w, spec, move |sim, _w| {
                t2.set(sim.now().as_nanos())
            });
            sim.run(&mut w);
            let stage_seconds = SimTime::from_nanos(t.get()).as_secs_f64();
            let local_read = touched as f64 / cfg.local_rate.bytes_per_sec();

            A2Point {
                fraction,
                gfs_seconds,
                gridftp_seconds: stage_seconds + local_read,
            }
        })
        .collect()
}

/// One cell of the A3 matrix.
#[derive(Clone, Copy, Debug)]
pub struct A3Point {
    /// Request (block) size in bytes.
    pub block_size: u64,
    /// Concurrent server connections.
    pub servers: u32,
    /// Whether requests were pipelined (deep prefetch) or stop-and-wait.
    pub pipelined: bool,
    /// Achieved rate, MB/s.
    pub mbyte_per_sec: f64,
}

/// Run A3: stream 10 GB over an 80 ms-RTT 10 Gb/s WAN with the given
/// block sizes and server counts, pipelined or request-at-a-time.
pub fn blocksize_streams(
    block_sizes: &[u64],
    server_counts: &[u32],
    pipelined: bool,
) -> Vec<A3Point> {
    let mut out = Vec::new();
    for &bs in block_sizes {
        for &n in server_counts {
            let mut b = WorldBuilder::new(3);
            b.key_bits(384);
            let client = b.topo().node("client");
            let hub = b.topo().node("hub");
            b.topo().duplex_link(
                client,
                hub,
                Bandwidth::gbit(10.0).scaled(TCP_EFF),
                SimDuration::from_millis(40),
                "wan",
            );
            let mut endpoints = Vec::new();
            for i in 0..n {
                let s = b.topo().node(format!("srv-{i}"));
                b.topo().duplex_link(
                    s,
                    hub,
                    Bandwidth::gbit(1.0).scaled(TCP_EFF),
                    SimDuration::from_micros(100),
                    format!("s{i}"),
                );
                endpoints.push(s);
            }
            b.cluster("a3");
            let (mut sim, mut w) = b.build();
            let bytes = 10 * GBYTE;
            let mut spec = StreamSpec::read(client, endpoints, bytes);
            if pipelined {
                // Deep prefetch: many outstanding blocks per connection.
                spec = spec.with_window(16 * bs.max(MBYTE));
            } else {
                // Request-at-a-time: one block in flight per connection.
                spec = spec.with_chunk(bs).with_window(bs);
            }
            let t = Rc::new(Cell::new(0u64));
            let t2 = t.clone();
            run_stream(&mut sim, &mut w, spec, move |sim, _w| {
                t2.set(sim.now().as_nanos())
            });
            sim.run(&mut w);
            let secs = SimTime::from_nanos(t.get()).as_secs_f64();
            out.push(A3Point {
                block_size: bs,
                servers: n,
                pipelined,
                mbyte_per_sec: bytes as f64 / secs / MBYTE as f64,
            });
        }
    }
    out
}

/// Authentication-workflow measurement: the wall-clock cost of the §6.2
/// remote mount handshake across a WAN, with and without `cipherList`
/// traffic encryption.
#[derive(Clone, Copy, Debug)]
pub struct AuthReport {
    /// Measured WAN round-trip, seconds.
    pub rtt_seconds: f64,
    /// Mount latency with AUTHONLY, seconds.
    pub mount_authonly_seconds: f64,
    /// Mount latency with cipherList encryption, seconds.
    pub mount_encrypt_seconds: f64,
}

/// Run the handshake measurement over a link with the given one-way delay.
pub fn auth_handshake(one_way: SimDuration) -> AuthReport {
    use gfs::admin::connect_clusters;
    use gfs::client::mount;
    use gfs::fscore::FsConfig;
    use gfs::world::FsParams;
    use gfs_auth::handshake::AccessMode;

    let run_once = |cipher: CipherMode| -> (f64, f64) {
        let mut b = WorldBuilder::new(11);
        b.key_bits(512);
        let server = b.topo().node("server");
        let remote = b.topo().node("remote");
        b.topo().duplex_link(
            server,
            remote,
            Bandwidth::gbit(1.0).scaled(TCP_EFF),
            one_way,
            "wan",
        );
        let exp = b.cluster("export.site");
        let imp = b.cluster("import.site");
        b.filesystem(
            exp,
            FsParams::ideal(
                FsConfig::small_test("gpfs-x"),
                server,
                vec![server],
                Bandwidth::mbyte(400.0),
                SimDuration::from_micros(300),
            ),
        );
        let c = b.client(imp, remote, 16);
        let (mut sim, mut w) = b.build();
        connect_clusters(&mut w, exp, imp, "gpfs-x", AccessMode::ReadWrite, server);
        w.clusters[exp.0 as usize].auth.cipher_mode = cipher;
        let rtt = w.net.rtt(server, remote).as_secs_f64();
        let t = Rc::new(Cell::new(0u64));
        let t2 = t.clone();
        mount(&mut sim, &mut w, c, "gpfs-x", AccessMode::ReadWrite, move |sim, _w, r| {
            r.unwrap();
            t2.set(sim.now().as_nanos());
        });
        sim.run(&mut w);
        (rtt, SimTime::from_nanos(t.get()).as_secs_f64())
    };

    let (rtt, plain) = run_once(CipherMode::AuthOnly);
    let (_, enc) = run_once(CipherMode::Encrypt);
    AuthReport {
        rtt_seconds: rtt,
        mount_authonly_seconds: plain,
        mount_encrypt_seconds: enc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a2_partial_access_wins_when_fraction_small() {
        let pts = gfs_vs_gridftp(&A2Config::default(), &[0.01, 0.5, 1.0]);
        // 1% touched: direct access must win by a wide margin.
        assert!(
            pts[0].gridftp_seconds > 20.0 * pts[0].gfs_seconds,
            "at 1%: gridftp {:.0}s vs gfs {:.0}s",
            pts[0].gridftp_seconds,
            pts[0].gfs_seconds
        );
        // Full scan: staging moves the same bytes over the WAN, plus one
        // local re-read pass — the ratio approaches
        // 1 + wan_rate/local_rate rather than the 100x of partial access.
        let ratio = pts[2].gridftp_seconds / pts[2].gfs_seconds;
        assert!(
            (0.9..2.0).contains(&ratio),
            "at 100%: ratio {ratio:.2} should be near 1+wan/local"
        );
        // Times increase with fraction for GFS.
        assert!(pts[0].gfs_seconds < pts[1].gfs_seconds);
        assert!(pts[1].gfs_seconds < pts[2].gfs_seconds);
    }

    #[test]
    fn a3_pipelining_dominates_at_wan_distance() {
        let stop_wait = blocksize_streams(&[256 * 1024, 4 * MBYTE], &[8], false);
        let piped = blocksize_streams(&[256 * 1024, 4 * MBYTE], &[8], true);
        // Stop-and-wait with small blocks collapses.
        assert!(
            stop_wait[0].mbyte_per_sec < 50.0,
            "256KB stop-and-wait gave {:.0} MB/s",
            stop_wait[0].mbyte_per_sec
        );
        // Bigger blocks help stop-and-wait...
        assert!(stop_wait[1].mbyte_per_sec > 4.0 * stop_wait[0].mbyte_per_sec);
        // ...but pipelining saturates the servers regardless of block size.
        for p in &piped {
            assert!(
                p.mbyte_per_sec > 800.0,
                "pipelined {:?} only {:.0} MB/s",
                p.block_size,
                p.mbyte_per_sec
            );
        }
    }

    #[test]
    fn a3_more_servers_more_throughput_when_pipelined() {
        let pts = blocksize_streams(&[MBYTE], &[1, 4, 8], true);
        assert!(pts[0].mbyte_per_sec < pts[1].mbyte_per_sec);
        assert!(pts[1].mbyte_per_sec < pts[2].mbyte_per_sec);
    }

    #[test]
    fn auth_handshake_costs_a_few_rtts() {
        let r = auth_handshake(SimDuration::from_millis(30));
        // 2 round trips of messages + crypto time: between 2 and 4 RTTs.
        assert!(r.mount_authonly_seconds > 1.9 * r.rtt_seconds);
        assert!(
            r.mount_authonly_seconds < 4.0 * r.rtt_seconds,
            "mount {:.3}s vs rtt {:.3}s",
            r.mount_authonly_seconds,
            r.rtt_seconds
        );
        // Encryption adds session-key work but stays the same order.
        assert!(r.mount_encrypt_seconds >= r.mount_authonly_seconds);
        assert!(r.mount_encrypt_seconds < 2.0 * r.mount_authonly_seconds);
    }
}
