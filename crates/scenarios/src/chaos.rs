//! # chaos — the invariant-checking harness for fault-injected storms
//!
//! The metadata storm proves the namespace scales; this module proves it
//! *survives*. A chaos run is an ordinary storm with a [`ChaosSpec`]
//! attached — NSD servers crash at op thresholds, WAN links flap, the
//! namespace manager dies and replays its WAL — and the harness checks the
//! invariants that must hold anyway:
//!
//! * **Determinism** — the same `ChaosSpec` + seed produces a bit-identical
//!   [`StormReport`] at any sweep-thread count. Faults, timeouts, backoffs
//!   and recoveries are all simulation events inside isolated per-point
//!   worlds, so chaos does not get to be flaky.
//! * **Eventual success** — every client RPC eventually lands: `gave_up`
//!   (ops that exhausted the retry budget) stays 0 as long as outages are
//!   shorter than the retry window.
//! * **Post-storm health** — fsck comes back clean, op chains drain, no
//!   watchdog timers leak, token state is conflict-free and client token
//!   mirrors / dentry caches agree with the manager and the live tree
//!   ([`world_invariants`], also evaluated inside every storm point).
//! * **Exactly-once** — a manager kill/restart mid-storm recovers by WAL
//!   replay and leaves the tree *identical* to a fault-free oracle run
//!   ([`check_manager_recovery`]): retried mutations are deduplicated, not
//!   reapplied.
//!
//! The checks return human-readable violation lists instead of panicking,
//! so tests, the perf harness and ci smoke stages can all reuse them.

use crate::metadata_storm::{
    run_chaos_storm_with_threads, ChaosSpec, StormConfig, StormReport,
};
use gfs::faults::ProgressPlan;
use gfs::world::GfsWorld;
use simcore::{Sim, SimDuration};

/// Audit a drained storm world. Returns one message per violated
/// invariant; empty means healthy. Cheap relative to the storm itself
/// (linear in clients × cached entries), so every storm point runs it —
/// healthy runs assert the same invariants chaos runs do.
pub fn world_invariants(sim: &Sim<GfsWorld>, w: &GfsWorld) -> Vec<String> {
    let mut v = Vec::new();

    // Every armed watchdog/fuse must have fired or been cancelled by the
    // exchange that created it.
    if sim.timers_pending() != 0 {
        v.push(format!(
            "{} watchdog timers still live after drain",
            sim.timers_pending()
        ));
    }

    for c in &w.clients {
        // Op chains completed, so no data operation can still be pinning a
        // token against revocation.
        if !c.inflight.is_empty() {
            v.push(format!(
                "client {} still marks {} inode(s) in-flight after drain",
                c.id.0,
                c.inflight.len()
            ));
        }

        // The client-side token mirror must be a subset of what the manager
        // actually granted: believing in a token the manager revoked (or
        // never granted) is how silent data corruption starts.
        for ((fs, inode), grants) in &c.held_tokens {
            let tm = &w.fss[fs.0 as usize].tokens;
            for (range, mode) in grants {
                if !tm.holds(*inode, c.id, *range, *mode) {
                    v.push(format!(
                        "client {} mirrors a token the manager does not hold: \
                         inode {} {range:?} {mode:?}",
                        c.id.0, inode.0
                    ));
                }
            }
        }

        // Dentry coherence: positive entries are only dropped by explicit
        // invalidation broadcasts, so any disagreement with the live tree
        // means an unlink/rename invalidation was lost along the way.
        for (fs, parent, name, cached) in c.dentry.entries() {
            let live = w.fss[fs.0 as usize].core.dir_child(parent, name);
            if live != Some(cached) {
                v.push(format!(
                    "client {} dentry stale: ({}, name {}) cached inode {} but tree has {:?}",
                    c.id.0, parent.0, name.0, cached.0, live
                ));
            }
        }
    }

    // Flyweight sessions must have quiesced: no in-flight facade ops, and
    // every session-tracked handle must still exist on its shared mount
    // context (a dangling session fd means close/forget bookkeeping
    // diverged from the context's handle table).
    for (sid, st) in w.sessions.iter() {
        if st.inflight_ops != 0 {
            v.push(format!(
                "session {sid} still has {} facade op(s) in flight after drain",
                st.inflight_ops
            ));
        }
        let ctx = &w.clients[st.ctx.0 as usize];
        for (_, h) in st.handles.iter() {
            if !ctx.handles.contains_key(h) {
                v.push(format!(
                    "session {sid} holds handle {} unknown to its mount context {}",
                    h.0, st.ctx.0
                ));
            }
        }
    }

    // Every same-instant batch must have been flushed by its scheduled
    // envelope event; ops parked in a pending batch were lost.
    if w.fanin.pending_ops() != 0 {
        v.push(format!(
            "{} fan-in op(s) still parked in unflushed envelopes after drain",
            w.fanin.pending_ops()
        ));
    }
    // Likewise for the writeback path: delegate batches drain within two
    // events of parking, so none may survive the run.
    if w.fanin.delegate_pending_ops() != 0 {
        v.push(format!(
            "{} delegated op(s) still parked in unflushed writeback batches after drain",
            w.fanin.delegate_pending_ops()
        ));
    }

    // No two clients may end up with overlapping write authority, no matter
    // how many acquire retries and revocations raced through the faults.
    for (i, inst) in w.fss.iter().enumerate() {
        let n = inst.tokens.conflicting_grants();
        if n != 0 {
            v.push(format!("fs {i}: {n} conflicting token grant pair(s) coexist"));
        }
        for (shard, m) in inst.mgrs.iter().enumerate() {
            if m.recovering {
                v.push(format!(
                    "fs {i}: manager shard {shard} still mid-recovery after drain"
                ));
            }
        }
        // Replica coherence: no read may ever have been served from an
        // invalidated copy, file generations stay under the monotone
        // watermark, every copy's generation trails its file's, and no
        // planned segment leaked its in-flight pressure.
        for msg in inst.replicas.coherence_violations() {
            v.push(format!("fs {i}: replica catalog: {msg}"));
        }
        // Subtree-lease coherence: every break must have completed (ack or
        // expulsion fuse), and the manager's lease table must agree with
        // the holders' client-side mirrors in both directions — a one-sided
        // lease is delegated authority nobody can revoke.
        if !inst.breaking.is_empty() {
            v.push(format!(
                "fs {i}: {} subtree lease break(s) still unresolved after drain",
                inst.breaking.len()
            ));
        }
        for (top, holder) in &inst.leases {
            let c = &w.clients[holder.0 as usize];
            if !c.leases.contains(&(gfs::FsId(i as u32), top.clone())) {
                v.push(format!(
                    "fs {i}: manager grants subtree lease {top:?} to client {} \
                     but the client does not mirror it",
                    holder.0
                ));
            }
        }
    }
    for c in &w.clients {
        for (fs, top) in &c.leases {
            if w.fss[fs.0 as usize].leases.get(top) != Some(&c.id) {
                v.push(format!(
                    "client {} mirrors subtree lease {top:?} on fs {} \
                     that the manager does not grant it",
                    c.id.0, fs.0
                ));
            }
        }
        // Journal entries are writeback state under a held lease; any entry
        // for a subtree the client no longer holds is a mutation that was
        // neither reconciled (surrender/break) nor discarded (expulsion).
        for e in &c.journal {
            if !c.leases.contains(&(e.fs, e.top.clone())) {
                v.push(format!(
                    "client {} retains a delegate journal entry for {:?} on fs {} \
                     without holding the subtree lease",
                    c.id.0, e.top, e.fs.0
                ));
            }
        }
    }

    v
}

/// Verdict of a chaos storm: the (serial) report plus every violated
/// invariant. Clean means the storm survived the faults with all
/// guarantees intact.
#[derive(Clone, Debug)]
pub struct ChaosVerdict {
    /// The storm's merged report (from the single-thread run).
    pub report: StormReport,
    /// Violations, empty when every invariant held.
    pub violations: Vec<String>,
}

impl ChaosVerdict {
    /// Did every invariant hold?
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with the full violation list unless clean — the one-liner for
    /// tests.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "chaos storm violated {} invariant(s):\n  {}",
            self.violations.len(),
            self.violations.join("\n  ")
        );
    }
}

/// Run `cfg` under `chaos` once serially and once with 8 sweep workers,
/// then check every cross-run invariant: thread-count determinism, clean
/// fsck, zero exhausted retry budgets, zero in-world invariant violations,
/// and — when the spec is non-empty — that faults actually fired.
pub fn check_chaos_storm(cfg: &StormConfig, chaos: &ChaosSpec) -> ChaosVerdict {
    let serial = run_chaos_storm_with_threads(cfg, chaos, 1);
    let threaded = run_chaos_storm_with_threads(cfg, chaos, 8);
    let mut violations = Vec::new();
    if serial != threaded {
        violations.push(format!(
            "report is not sweep-thread-invariant:\n  1 thread: {serial:?}\n  8 threads: {threaded:?}"
        ));
    }
    if !serial.fsck_clean {
        violations.push("post-storm fsck found inconsistencies".into());
    }
    if serial.gave_up != 0 {
        violations.push(format!(
            "{} op(s) exhausted the retry budget — outages outlasted the retry window",
            serial.gave_up
        ));
    }
    if serial.invariant_violations != 0 {
        violations.push(format!(
            "{} world-invariant violation(s) inside storm points (see stderr)",
            serial.invariant_violations
        ));
    }
    if !chaos.is_empty() && serial.faults_injected == 0 {
        violations.push("chaos spec was non-empty but injected no faults".into());
    }
    ChaosVerdict {
        report: serial,
        violations,
    }
}

/// The acceptance-criteria schedule: crash an NSD server at 40% of the
/// race (healing after `outage`), flap the WAN at 70%. With `wan_clients`
/// set, the flap severs every client from the farm at once.
pub fn canonical_chaos(cfg: &StormConfig, outage: SimDuration) -> ChaosSpec {
    ChaosSpec {
        progress: ProgressPlan::new()
            // "meta-srv1" serves data only in the single-manager storm —
            // "meta-srv0" is the manager, whose death is
            // `check_manager_recovery`'s dedicated subject. In a
            // partitioned storm "meta-srv1" also hosts manager shard 1, so
            // the same schedule doubles as the kill-one-shard chaos run.
            .server_crash_at_op(cfg.race_op_at(0.4), gfs::FsId(0), "meta-srv1", Some(outage))
            .link_flap_at_op(cfg.race_op_at(0.7), "storm-wan", outage),
        timed: Default::default(),
        wan_clients: true,
    }
}

/// Verdict of the exactly-once recovery check.
#[derive(Clone, Debug)]
pub struct RecoveryVerdict {
    /// The faulted run (manager killed and recovered mid-storm).
    pub chaos: StormReport,
    /// The fault-free oracle run of the identical workload.
    pub oracle: StormReport,
    /// Violations, empty when recovery was exactly-once.
    pub violations: Vec<String>,
}

impl RecoveryVerdict {
    /// Did recovery leave the namespace identical to the oracle's?
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with the violation list unless clean.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "manager recovery violated {} invariant(s):\n  {}",
            self.violations.len(),
            self.violations.join("\n  ")
        );
    }
}

/// Kill the acting namespace manager at `crash_frac` of the race, restart
/// it `outage` later, and compare the recovered world against a fault-free
/// oracle run of the *same* workload.
///
/// The config is forced to a single client per point so the op sequence is
/// timing-independent: with one sequential chain, the only way the faulted
/// run can diverge from the oracle is a correctness bug — a retried
/// mutation applied twice (WAL dedup failure), a lost mutation, or an op
/// result that changed across the crash. So the check can demand *exact*
/// equality: the op-result fingerprint, the structural tree fingerprint,
/// and the op/error counts must all match, while the epoch/WAL counters
/// must prove a real crash-recovery actually happened.
pub fn check_manager_recovery(
    cfg: &StormConfig,
    crash_frac: f64,
    outage: SimDuration,
) -> RecoveryVerdict {
    check_manager_recovery_on(cfg, crash_frac, outage, "meta-srv0")
}

/// [`check_manager_recovery`] with an explicit crash target. `"meta-srv0"`
/// is the shard-0 (single-manager) home; in a partitioned storm
/// `"meta-srvN"` hosts shard `N`, so crashing it exercises the
/// kill-one-shard recovery path while the other shards keep serving.
pub fn check_manager_recovery_on(
    cfg: &StormConfig,
    crash_frac: f64,
    outage: SimDuration,
    server: &str,
) -> RecoveryVerdict {
    let mut cfg = *cfg;
    cfg.clients_per_point = 1;
    let oracle = run_chaos_storm_with_threads(&cfg, &ChaosSpec::none(), 1);
    let chaos_spec = ChaosSpec {
        progress: ProgressPlan::new().server_crash_at_op(
            cfg.race_op_at(crash_frac),
            gfs::FsId(0),
            server,
            Some(outage),
        ),
        timed: Default::default(),
        wan_clients: false,
    };
    let chaos = run_chaos_storm_with_threads(&cfg, &chaos_spec, 1);

    let mut violations = Vec::new();
    if chaos.gave_up != 0 {
        violations.push(format!(
            "{} op(s) gave up — recovery outlasted the retry window",
            chaos.gave_up
        ));
    }
    if chaos.tree_fingerprint != oracle.tree_fingerprint {
        violations.push(format!(
            "recovered tree differs from oracle: {:#x} vs {:#x} — a mutation was lost or replayed twice",
            chaos.tree_fingerprint, oracle.tree_fingerprint
        ));
    }
    if chaos.fingerprint != oracle.fingerprint {
        violations.push(format!(
            "op-result fingerprint differs from oracle: {:#x} vs {:#x} — some op observed the crash",
            chaos.fingerprint, oracle.fingerprint
        ));
    }
    if (chaos.ops, chaos.errors) != (oracle.ops, oracle.errors) {
        violations.push(format!(
            "op/error counts differ from oracle: ({}, {}) vs ({}, {})",
            chaos.ops, chaos.errors, oracle.ops, oracle.errors
        ));
    }
    if !chaos.fsck_clean {
        violations.push("post-recovery fsck found inconsistencies".into());
    }
    if chaos.invariant_violations != 0 {
        violations.push(format!(
            "{} world-invariant violation(s) inside storm points (see stderr)",
            chaos.invariant_violations
        ));
    }
    // Prove the scenario exercised what it claims to: a real takeover with
    // a real WAL replay, observed by clients as timeouts they rode out.
    if chaos.manager_epochs == 0 {
        violations.push("manager epoch never advanced — no takeover happened".into());
    }
    if chaos.wal_replayed == 0 {
        violations.push("WAL replayed no entries — dedup state was never rebuilt".into());
    }
    if chaos.timeouts == 0 {
        violations.push("no client ever timed out — the crash window was invisible".into());
    }
    RecoveryVerdict {
        chaos,
        oracle,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata_storm::StormMix;

    /// The acceptance scenario: NSD crash at 40% + WAN flap at 70%, storm
    /// completes fsck-clean with every client RPC eventually succeeding,
    /// bit-identical across sweep-thread counts.
    #[test]
    fn canonical_chaos_storm_survives_and_is_deterministic() {
        let cfg = StormConfig::small();
        let spec = canonical_chaos(&cfg, SimDuration::from_millis(400));
        let verdict = check_chaos_storm(&cfg, &spec);
        verdict.assert_clean();
        let r = &verdict.report;
        assert!(r.faults_injected >= 2, "faults {}", r.faults_injected);
        assert!(r.restores >= 2, "restores {}", r.restores);
        assert!(
            r.timeouts > 0,
            "a crash plus a flap should strand at least one in-flight RPC"
        );
        assert_eq!(r.gave_up, 0, "every RPC must eventually succeed");
    }

    /// Exactly-once across manager death: kill/restart mid-storm, recover
    /// via WAL replay, end up with the oracle's tree bit-for-bit.
    #[test]
    fn manager_recovery_matches_fault_free_oracle() {
        let v = check_manager_recovery(
            &StormConfig::small(),
            0.5,
            SimDuration::from_millis(600),
        );
        v.assert_clean();
        assert!(v.chaos.wal_replayed > 0);
        assert!(v.chaos.manager_epochs >= 1);
    }

    /// The same guarantees hold under the trace-shaped mix.
    #[test]
    fn trace_mix_chaos_storm_survives() {
        let cfg = StormConfig::small().with_mix(StormMix::Trace);
        let spec = canonical_chaos(&cfg, SimDuration::from_millis(400));
        check_chaos_storm(&cfg, &spec).assert_clean();
    }

    /// Kill-one-shard chaos: in a 4-shard partitioned storm, the canonical
    /// schedule's "meta-srv1" crash takes down the shard-1 manager while
    /// shards 0/2/3 keep serving. Cross-shard two-phase ops must defer and
    /// re-drive rather than give up, and the storm stays deterministic.
    #[test]
    fn partitioned_chaos_storm_survives_shard_loss() {
        let cfg = StormConfig::small()
            .with_sessions_per_client(25)
            .with_managers(4);
        let spec = canonical_chaos(&cfg, SimDuration::from_millis(400));
        let verdict = check_chaos_storm(&cfg, &spec);
        verdict.assert_clean();
        let r = &verdict.report;
        assert!(
            r.cross_shard_ops > 0,
            "shard loss must not starve the two-phase rename arm"
        );
        assert_eq!(r.gave_up, 0, "every RPC must eventually succeed");
    }

    /// Exactly-once across the death of a *non-zero* shard's manager: kill
    /// "meta-srv1" (home of shard 1 at `managers = 4`) mid-storm and
    /// demand the recovered tree and op results match the fault-free
    /// oracle bit-for-bit — WAL dedup must hold per shard, not just on the
    /// legacy shard 0.
    #[test]
    fn shard_manager_recovery_matches_fault_free_oracle() {
        let mut cfg = StormConfig::small().with_managers(4);
        // One sequential chain (the check forces one client); more ops so
        // plenty of them route to shard 1 on both sides of the crash.
        cfg.ops_per_client = 96;
        let v = check_manager_recovery_on(&cfg, 0.5, SimDuration::from_millis(600), "meta-srv1");
        v.assert_clean();
        assert!(v.chaos.wal_replayed > 0);
        assert!(v.chaos.manager_epochs >= 1);
        assert!(v.chaos.cross_shard_ops > 0);
    }
}
