//! Batching probe for the partitioned massive storm: runs
//! `StormConfig::massive().with_managers(4)` at the given sweep thread
//! count (default 8) and prints every counter the ci.sh gates read —
//! envelopes, ops/envelope, delegation, reconciliation, migrations,
//! fingerprints and the modeled rate. Set `GFS_STORM_DEBUG=1` for
//! per-shard utilization on stderr.
use scenarios::metadata_storm::{run_storm_with_threads, StormConfig};

fn main() {
    let threads: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let cfg = StormConfig::massive().with_managers(4);
    let t0 = std::time::Instant::now();
    let r = run_storm_with_threads(&cfg, threads as usize);
    let wall = t0.elapsed().as_secs_f64();
    println!("threads               {threads}");
    println!("ops                   {}", r.ops);
    println!("envelopes             {}", r.envelopes);
    println!("envelope_ops          {}", r.envelope_ops);
    println!("ops_per_envelope      {:.2}", r.ops_per_envelope());
    println!("delegated_ops         {}", r.delegated_ops);
    println!("reconcile_ops         {}", r.reconcile_ops);
    println!("lease_acquires        {}", r.lease_acquires);
    println!("lease_breaks          {}", r.lease_breaks);
    println!("rebalance_migrations  {}", r.rebalance_migrations);
    println!("cross_shard_ops       {}", r.cross_shard_ops);
    println!("gave_up               {}", r.gave_up);
    println!("errors                {}", r.errors);
    println!("fingerprint           {}", r.fingerprint);
    println!("tree_fingerprint      {}", r.tree_fingerprint);
    println!("events                {}", r.events);
    println!("sim_ns                {}", r.sim_ns);
    println!("ops_per_sec(model)    {:.0}", r.ops as f64 / (r.sim_ns as f64 / 1e9));
    println!("wall_secs             {wall:.2}");
}
