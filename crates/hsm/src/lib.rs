//! # hsm — hierarchical storage management
//!
//! The archival tier behind the Global File System. The paper's §8 future
//! work makes the GFS disk "an integral part of a HSM, with automatic
//! migration of unused data to tape, and the automatic recall of requested
//! data from deeper archive", plus remote second copies between sites
//! (SDSC ↔ PSC). This crate provides:
//!
//! * [`tape`] — silo/drive service-time models (mount, locate, stream).
//! * [`manager`] — watermark-driven LRU migration, transparent recall,
//!   optional dual-copy archiving, and a "local catastrophe" survival
//!   report for the §8 copyright-library argument.

pub mod manager;
pub mod tape;

pub use manager::{AccessOutcome, Hsm, HsmFile, HsmFileId, HsmPolicy, Residency};
pub use tape::{TapeLibrary, TapeSpec};
