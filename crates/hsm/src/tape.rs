//! Tape library model: silos, drives, mount/seek/stream service times.
//!
//! The SC'02 configuration (paper Fig. 1) backed the disk cache with silos
//! and tape drives ("6 PB", tens of MB/s per drive, ~200 MB/s per
//! controller); §8 plans automatic migration between the GFS disk and this
//! tier. A tape job's service time is dominated by robot mount + position
//! seek, then streams at the drive rate.

use simcore::{Bandwidth, SimDuration, SimTime};

/// Drive/robot characteristics.
#[derive(Clone, Debug)]
pub struct TapeSpec {
    /// Robot pick + load + thread time.
    pub mount_time: SimDuration,
    /// Average position seek after mount.
    pub seek_time: SimDuration,
    /// Streaming rate.
    pub rate: Bandwidth,
    /// Unload + return time charged after each job.
    pub unload_time: SimDuration,
}

impl TapeSpec {
    /// A 2005-era drive: 60 s robot cycle, 45 s average locate, 30 MB/s.
    pub fn stk_2005() -> Self {
        TapeSpec {
            mount_time: SimDuration::from_secs(60),
            seek_time: SimDuration::from_secs(45),
            rate: Bandwidth::mbyte(30.0),
            unload_time: SimDuration::from_secs(30),
        }
    }
}

/// A library: several identical drives in front of a silo.
#[derive(Clone, Debug)]
pub struct TapeLibrary {
    /// Drive characteristics.
    pub spec: TapeSpec,
    drives: Vec<SimTime>, // busy-until per drive
    /// Total bytes written to tape.
    pub bytes_written: u64,
    /// Total bytes recalled from tape.
    pub bytes_read: u64,
    /// Jobs served.
    pub jobs: u64,
}

impl TapeLibrary {
    /// A library with `drives` drives.
    pub fn new(spec: TapeSpec, drives: u32) -> Self {
        assert!(drives > 0, "library needs at least one drive");
        TapeLibrary {
            spec,
            drives: vec![SimTime::ZERO; drives as usize],
            bytes_written: 0,
            bytes_read: 0,
            jobs: 0,
        }
    }

    /// Number of drives.
    pub fn drive_count(&self) -> usize {
        self.drives.len()
    }

    /// Submit a tape job at `now`; returns its completion time. Picks the
    /// drive that can start earliest.
    pub fn submit(&mut self, now: SimTime, bytes: u64, write: bool) -> SimTime {
        assert!(bytes > 0, "zero-byte tape job");
        let s = &self.spec;
        let service = s.mount_time
            + s.seek_time
            + SimDuration::from_secs_f64(bytes as f64 / s.rate.bytes_per_sec())
            + s.unload_time;
        let drive = self
            .drives
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .expect("at least one drive");
        let start = self.drives[drive].max(now);
        let done = start + service;
        self.drives[drive] = done;
        self.jobs += 1;
        if write {
            self.bytes_written += bytes;
        } else {
            self.bytes_read += bytes;
        }
        done
    }

    /// Earliest time a new job could start.
    pub fn earliest_start(&self, now: SimTime) -> SimTime {
        self.drives
            .iter()
            .map(|t| (*t).max(now))
            .min()
            .expect("at least one drive")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::GBYTE;

    #[test]
    fn service_time_includes_mount_and_stream() {
        let mut lib = TapeLibrary::new(TapeSpec::stk_2005(), 1);
        // 9 GB at 30 MB/s = 300 s + 60 + 45 + 30 = 435 s.
        let done = lib.submit(SimTime::ZERO, 9 * GBYTE, true);
        let t = done.as_secs_f64();
        assert!((434.0..436.0).contains(&t), "tape job took {t}s");
    }

    #[test]
    fn jobs_spread_across_drives() {
        let mut lib = TapeLibrary::new(TapeSpec::stk_2005(), 4);
        let times: Vec<f64> = (0..4)
            .map(|_| lib.submit(SimTime::ZERO, GBYTE, true).as_secs_f64())
            .collect();
        // Four drives: all four jobs finish at the same time.
        for t in &times {
            assert!((t - times[0]).abs() < 1e-9);
        }
        // Fifth job queues behind one of them.
        let t5 = lib.submit(SimTime::ZERO, GBYTE, true).as_secs_f64();
        assert!(t5 > times[0]);
    }

    #[test]
    fn accounting() {
        let mut lib = TapeLibrary::new(TapeSpec::stk_2005(), 2);
        lib.submit(SimTime::ZERO, 100, true);
        lib.submit(SimTime::ZERO, 200, false);
        assert_eq!(lib.bytes_written, 100);
        assert_eq!(lib.bytes_read, 200);
        assert_eq!(lib.jobs, 2);
    }

    #[test]
    #[should_panic(expected = "zero-byte tape job")]
    fn zero_byte_rejected() {
        TapeLibrary::new(TapeSpec::stk_2005(), 1).submit(SimTime::ZERO, 0, true);
    }
}
