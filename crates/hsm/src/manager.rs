//! The hierarchical storage manager: watermark-driven migration of cold
//! data from GFS disk to tape, automatic recall on access, and the remote
//! second copy the paper's §8 describes ("SDSC and the Pittsburgh
//! Supercomputing Center are already providing remote second copies for
//! each other's archives").
//!
//! §8's policy argument is implemented literally: "it is much more
//! satisfactory to allow an automatic, algorithmic approach where data is
//! migrated to tape storage as it is less used and recalled when needed."

use crate::tape::TapeLibrary;
use simcore::SimTime;
use std::collections::BTreeMap;

/// Identifies a file in the HSM namespace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct HsmFileId(pub u64);

/// Where a file's bytes currently live.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Residency {
    /// On disk only (not yet archived).
    DiskOnly,
    /// On disk and on tape (premigrated — disk copy droppable for free).
    Both,
    /// On tape only (disk space reclaimed).
    TapeOnly,
}

/// Per-file record.
#[derive(Clone, Debug)]
pub struct HsmFile {
    /// Size in bytes.
    pub size: u64,
    /// Residency state.
    pub residency: Residency,
    /// Last access time (drives the LRU policy).
    pub last_access: SimTime,
    /// Tape copies held (1 = local archive, 2 = + remote second copy).
    pub tape_copies: u32,
}

/// Outcome of an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// When the data is readable from disk (now, unless recalled).
    pub available_at: SimTime,
    /// Whether a tape recall was needed.
    pub recalled: bool,
}

/// Migration/capacity policy.
#[derive(Clone, Copy, Debug)]
pub struct HsmPolicy {
    /// Disk capacity in bytes.
    pub disk_capacity: u64,
    /// Start migrating when disk use exceeds this fraction.
    pub high_watermark: f64,
    /// Migrate until disk use falls below this fraction.
    pub low_watermark: f64,
    /// Keep a remote second copy of every archived file?
    pub dual_copy: bool,
}

impl HsmPolicy {
    /// A typical configuration: migrate at 90 % full down to 75 %.
    pub fn with_capacity(disk_capacity: u64) -> Self {
        HsmPolicy {
            disk_capacity,
            high_watermark: 0.90,
            low_watermark: 0.75,
            dual_copy: false,
        }
    }
}

/// The manager.
pub struct Hsm {
    /// Policy knobs.
    pub policy: HsmPolicy,
    /// The local tape library.
    pub library: TapeLibrary,
    /// The remote second-copy library (used when `policy.dual_copy`).
    pub remote_library: Option<TapeLibrary>,
    files: BTreeMap<HsmFileId, HsmFile>,
    disk_used: u64,
    /// Counters.
    pub migrations: u64,
    /// Recalls performed.
    pub recalls: u64,
}

impl Hsm {
    /// New manager over a library.
    pub fn new(policy: HsmPolicy, library: TapeLibrary, remote: Option<TapeLibrary>) -> Self {
        assert!(policy.low_watermark < policy.high_watermark);
        assert!(policy.high_watermark <= 1.0 && policy.low_watermark > 0.0);
        assert!(
            !policy.dual_copy || remote.is_some(),
            "dual_copy requires a remote library"
        );
        Hsm {
            policy,
            library,
            remote_library: remote,
            files: BTreeMap::new(),
            disk_used: 0,
            migrations: 0,
            recalls: 0,
        }
    }

    /// Current disk usage in bytes.
    pub fn disk_used(&self) -> u64 {
        self.disk_used
    }

    /// Current disk usage as a fraction of capacity.
    pub fn disk_fill(&self) -> f64 {
        self.disk_used as f64 / self.policy.disk_capacity as f64
    }

    /// Look up a file.
    pub fn file(&self, id: HsmFileId) -> Option<&HsmFile> {
        self.files.get(&id)
    }

    /// Ingest a new file onto disk at `now`. Triggers watermark migration
    /// if the disk crosses the high watermark. Returns the time the ingest
    /// (including any forced migrations needed for space) completes.
    pub fn ingest(&mut self, now: SimTime, id: HsmFileId, size: u64) -> SimTime {
        assert!(size > 0, "empty file");
        assert!(
            size <= self.policy.disk_capacity,
            "file larger than disk cache"
        );
        assert!(!self.files.contains_key(&id), "duplicate HSM file id");
        self.files.insert(
            id,
            HsmFile {
                size,
                residency: Residency::DiskOnly,
                last_access: now,
                tape_copies: 0,
            },
        );
        self.disk_used += size;
        self.run_migration(now)
    }

    /// Access a file at `now`: recalls from tape when necessary.
    pub fn access(&mut self, now: SimTime, id: HsmFileId) -> Option<AccessOutcome> {
        let f = self.files.get_mut(&id)?;
        f.last_access = now;
        match f.residency {
            Residency::DiskOnly | Residency::Both => Some(AccessOutcome {
                available_at: now,
                recalled: false,
            }),
            Residency::TapeOnly => {
                let size = f.size;
                f.residency = Residency::Both;
                self.recalls += 1;
                self.disk_used += size;
                let ready = self.library.submit(now, size, false);
                // Recall may itself push us over the watermark.
                let settled = self.run_migration(now);
                Some(AccessOutcome {
                    available_at: ready.max(settled),
                    recalled: true,
                })
            }
        }
    }

    /// Delete a file everywhere.
    pub fn delete(&mut self, id: HsmFileId) -> bool {
        match self.files.remove(&id) {
            Some(f) => {
                if f.residency != Residency::TapeOnly {
                    self.disk_used -= f.size;
                }
                true
            }
            None => false,
        }
    }

    /// Run the watermark policy at `now`; returns when the migration work
    /// completes (now, if nothing to do).
    ///
    /// Two-step policy, cheapest first: drop disk copies of already-taped
    /// (`Both`) files for free, then write the coldest `DiskOnly` files to
    /// tape (and the remote library when dual-copy is on) and drop them.
    pub fn run_migration(&mut self, now: SimTime) -> SimTime {
        let high = (self.policy.high_watermark * self.policy.disk_capacity as f64) as u64;
        let low = (self.policy.low_watermark * self.policy.disk_capacity as f64) as u64;
        if self.disk_used <= high {
            return now;
        }
        let mut done = now;

        // Step 1: free premigrated copies, coldest first.
        let mut both: Vec<(SimTime, HsmFileId)> = self
            .files
            .iter()
            .filter(|(_, f)| f.residency == Residency::Both)
            .map(|(id, f)| (f.last_access, *id))
            .collect();
        both.sort();
        for (_, id) in both {
            if self.disk_used <= low {
                return done;
            }
            let f = self.files.get_mut(&id).expect("listed above");
            f.residency = Residency::TapeOnly;
            self.disk_used -= f.size;
        }

        // Step 2: migrate cold DiskOnly files to tape.
        let mut cold: Vec<(SimTime, HsmFileId)> = self
            .files
            .iter()
            .filter(|(_, f)| f.residency == Residency::DiskOnly)
            .map(|(id, f)| (f.last_access, *id))
            .collect();
        cold.sort();
        for (_, id) in cold {
            if self.disk_used <= low {
                break;
            }
            let (size, copies) = {
                let f = self.files.get_mut(&id).expect("listed above");
                f.residency = Residency::TapeOnly;
                f.tape_copies = 1;
                (f.size, &mut 0)
            };
            let _ = copies;
            self.disk_used -= size;
            self.migrations += 1;
            done = done.max(self.library.submit(now, size, true));
            if self.policy.dual_copy {
                let remote = self
                    .remote_library
                    .as_mut()
                    .expect("checked in constructor");
                done = done.max(remote.submit(now, size, true));
                self.files.get_mut(&id).expect("exists").tape_copies = 2;
            } else {
                self.files.get_mut(&id).expect("exists").tape_copies = 1;
            }
        }
        done
    }

    /// Simulate loss of the local disk + library ("local catastrophe",
    /// §8's copyright-library argument): files survive iff a second copy
    /// exists. Returns (survivors, lost).
    pub fn catastrophe_report(&self) -> (usize, usize) {
        let survivors = self.files.values().filter(|f| f.tape_copies >= 2).count();
        (survivors, self.files.len() - survivors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::TapeSpec;
    use simcore::GBYTE;

    fn hsm(capacity_gb: u64, dual: bool) -> Hsm {
        let policy = HsmPolicy {
            disk_capacity: capacity_gb * GBYTE,
            high_watermark: 0.9,
            low_watermark: 0.7,
            dual_copy: dual,
        };
        let lib = TapeLibrary::new(TapeSpec::stk_2005(), 4);
        let remote = dual.then(|| TapeLibrary::new(TapeSpec::stk_2005(), 4));
        Hsm::new(policy, lib, remote)
    }

    #[test]
    fn ingest_below_watermark_is_instant() {
        let mut h = hsm(100, false);
        let t = h.ingest(SimTime::ZERO, HsmFileId(1), 10 * GBYTE);
        assert_eq!(t, SimTime::ZERO);
        assert_eq!(h.disk_used(), 10 * GBYTE);
        assert_eq!(h.migrations, 0);
    }

    #[test]
    fn crossing_high_watermark_migrates_lru_to_low() {
        let mut h = hsm(100, false);
        // Fill to 88 GB with files accessed at increasing times.
        for i in 0..22u64 {
            h.ingest(SimTime::from_secs(i), HsmFileId(i), 4 * GBYTE);
        }
        assert_eq!(h.migrations, 0);
        // Next ingest crosses 90 GB: migrate down to ≤70 GB.
        h.ingest(SimTime::from_secs(100), HsmFileId(99), 4 * GBYTE);
        assert!(h.migrations > 0);
        assert!(h.disk_fill() <= 0.71, "fill {} after migration", h.disk_fill());
        // Oldest files went to tape first.
        assert_eq!(h.file(HsmFileId(0)).unwrap().residency, Residency::TapeOnly);
        // Newest file stayed.
        assert_eq!(
            h.file(HsmFileId(99)).unwrap().residency,
            Residency::DiskOnly
        );
    }

    #[test]
    fn access_recalls_from_tape() {
        let mut h = hsm(100, false);
        for i in 0..23u64 {
            h.ingest(SimTime::from_secs(i), HsmFileId(i), 4 * GBYTE);
        }
        h.ingest(SimTime::from_secs(100), HsmFileId(99), 4 * GBYTE);
        assert_eq!(h.file(HsmFileId(0)).unwrap().residency, Residency::TapeOnly);
        let now = SimTime::from_secs(1000);
        let out = h.access(now, HsmFileId(0)).unwrap();
        assert!(out.recalled);
        assert!(out.available_at > now, "recall takes tape time");
        assert_eq!(h.recalls, 1);
        assert_eq!(h.file(HsmFileId(0)).unwrap().residency, Residency::Both);
    }

    #[test]
    fn warm_access_is_instant_and_protects_from_migration() {
        let mut h = hsm(100, false);
        for i in 0..20u64 {
            h.ingest(SimTime::from_secs(i), HsmFileId(i), 4 * GBYTE);
        }
        // Touch file 0 to make it the hottest.
        let out = h.access(SimTime::from_secs(50), HsmFileId(0)).unwrap();
        assert!(!out.recalled);
        // Force migration pressure.
        for i in 100..104u64 {
            h.ingest(SimTime::from_secs(i), HsmFileId(i), 4 * GBYTE);
        }
        // File 0 was recently touched: still on disk; file 1 (coldest) not.
        assert_ne!(h.file(HsmFileId(0)).unwrap().residency, Residency::TapeOnly);
        assert_eq!(h.file(HsmFileId(1)).unwrap().residency, Residency::TapeOnly);
    }

    #[test]
    fn premigrated_copies_dropped_for_free() {
        let mut h = hsm(100, false);
        for i in 0..23u64 {
            h.ingest(SimTime::from_secs(i), HsmFileId(i), 4 * GBYTE);
        }
        h.ingest(SimTime::from_secs(100), HsmFileId(99), 4 * GBYTE);
        // Recall a migrated file -> residency Both.
        h.access(SimTime::from_secs(200), HsmFileId(0)).unwrap();
        let tape_jobs_before = h.library.jobs;
        // Pressure again: the Both copy must drop without new tape writes
        // (it is the only reclaimable space at step 1).
        for i in 300..304u64 {
            h.ingest(SimTime::from_secs(i), HsmFileId(i), 4 * GBYTE);
        }
        assert_eq!(h.file(HsmFileId(0)).unwrap().residency, Residency::TapeOnly);
        // Step-1 reclaim wrote nothing for file 0 (its copy existed); any
        // new jobs are step-2 migrations of other files.
        assert!(h.library.bytes_written >= (tape_jobs_before - 1) * 4 * GBYTE);
    }

    #[test]
    fn dual_copy_survives_catastrophe() {
        let mut h = hsm(100, true);
        for i in 0..25u64 {
            h.ingest(SimTime::from_secs(i), HsmFileId(i), 4 * GBYTE);
        }
        let (survivors, lost) = h.catastrophe_report();
        assert!(survivors > 0, "dual-copy files must survive");
        // Files still DiskOnly have no second copy yet.
        assert!(lost > 0);
        // Every survivor has 2 copies.
        assert!(h
            .files
            .values()
            .filter(|f| f.tape_copies >= 2)
            .all(|f| f.residency == Residency::TapeOnly));
        // The remote library saw the same archived bytes as the local one.
        assert_eq!(
            h.remote_library.as_ref().unwrap().bytes_written,
            h.library.bytes_written
        );
    }

    #[test]
    fn delete_frees_disk() {
        let mut h = hsm(100, false);
        h.ingest(SimTime::ZERO, HsmFileId(1), 10 * GBYTE);
        assert!(h.delete(HsmFileId(1)));
        assert_eq!(h.disk_used(), 0);
        assert!(!h.delete(HsmFileId(1)));
    }

    #[test]
    #[should_panic(expected = "duplicate HSM file id")]
    fn duplicate_id_rejected() {
        let mut h = hsm(100, false);
        h.ingest(SimTime::ZERO, HsmFileId(1), GBYTE);
        h.ingest(SimTime::ZERO, HsmFileId(1), GBYTE);
    }
}
