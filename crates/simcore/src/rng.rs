//! Deterministic random-number helpers.
//!
//! Every stochastic element in the workspace (workload think times, disk
//! service jitter, RSA prime search) draws from a [`rand::rngs::StdRng`]
//! created here, so a `(seed, label)` pair fully determines a run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derive a deterministic RNG from a global seed and a component label.
///
/// Mixing the label into the seed ensures two components given the same
/// global seed do not see correlated streams.
pub fn det_rng(seed: u64, label: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed.rotate_left(17);
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Sample a multiplicative jitter factor in `[1 - frac, 1 + frac]`.
///
/// Used for disk service-time variation; `frac = 0` disables jitter
/// entirely, which keeps unit tests exact.
pub fn jitter(rng: &mut StdRng, frac: f64) -> f64 {
    if frac <= 0.0 {
        return 1.0;
    }
    1.0 + rng.gen_range(-frac..=frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = det_rng(42, "disk");
        let mut b = det_rng(42, "disk");
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_labels_decorrelate() {
        let mut a = det_rng(42, "disk");
        let mut b = det_rng(42, "link");
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_ne!(xa, xb);
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = det_rng(1, "x");
        let mut b = det_rng(2, "x");
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_ne!(xa, xb);
    }

    #[test]
    fn jitter_bounds() {
        let mut rng = det_rng(7, "jitter");
        for _ in 0..1000 {
            let j = jitter(&mut rng, 0.1);
            assert!((0.9..=1.1).contains(&j), "jitter out of range: {j}");
        }
    }

    #[test]
    fn zero_jitter_is_identity() {
        let mut rng = det_rng(7, "jitter");
        assert_eq!(jitter(&mut rng, 0.0), 1.0);
    }
}
