//! # simcore — deterministic discrete-event simulation engine
//!
//! The substrate under every other crate in this workspace. The paper's
//! systems (WAN links, Fibre Channel fabrics, RAID controllers, the parallel
//! filesystem itself) all run on top of this engine: a priority queue of
//! timestamped actions over a user-supplied world type `W`.
//!
//! Design points:
//!
//! * **Determinism.** Simulated time is [`SimTime`], a `u64` nanosecond
//!   counter. All randomness flows through seeded [`rand::rngs::StdRng`]
//!   instances created by [`rng::det_rng`]. Two runs with the same seed and
//!   configuration produce bit-identical results.
//! * **Closure events.** An event is `FnOnce(&mut Sim<W>, &mut W)`. The
//!   engine removes the event from the heap before invoking it, so handlers
//!   may freely schedule follow-up events. Ties in time break by insertion
//!   order (a monotone sequence number), which keeps FIFO semantics for
//!   same-instant events.
//! * **No wall clock.** Nothing in this crate (or its dependents) reads the
//!   host clock; all timestamps come from the engine.

pub mod fxhash;
pub mod rng;
pub mod series;
pub mod sim;
pub mod stats;
pub mod time;
pub mod units;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use rng::det_rng;
pub use series::{Dip, RateSeries, SeriesPoint, TimeSeries};
pub use sim::{Action, Sim, TimerId};
pub use stats::Summary;
pub use time::{SimDuration, SimTime};
pub use units::{Bandwidth, ByteSize, GBIT, GBYTE, KBYTE, MBIT, MBYTE, TBYTE};
