//! Small summary-statistics helper used by the benchmark harnesses when
//! reporting paper-vs-measured numbers.


/// Summary statistics over a set of samples.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Minimum, or 0 when empty.
    pub min: f64,
    /// Maximum, or 0 when empty.
    pub max: f64,
    /// Arithmetic mean, or 0 when empty.
    pub mean: f64,
    /// Population standard deviation, or 0 when empty.
    pub stddev: f64,
    /// Median (lower of the two middle samples for even n).
    pub median: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
}

impl Summary {
    /// Compute a summary; NaN samples are ignored.
    pub fn of(samples: &[f64]) -> Summary {
        let mut xs: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        if xs.is_empty() {
            return Summary::default();
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after filter"));
        let n = xs.len();
        let sum: f64 = xs.iter().sum();
        let mean = sum / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let rank = |q: f64| -> f64 {
            let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            xs[idx]
        };
        Summary {
            n,
            min: xs[0],
            max: xs[n - 1],
            mean,
            stddev: var.sqrt(),
            median: xs[(n - 1) / 2],
            p95: rank(0.95),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn basic_stats() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert!((s.stddev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn nan_filtered() {
        let s = Summary::of(&[f64::NAN, 2.0, 4.0]);
        assert_eq!(s.n, 2);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn p95_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.p95, 95.0);
    }

    #[test]
    fn unsorted_input_ok() {
        let s = Summary::of(&[5.0, 1.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
    }
}
