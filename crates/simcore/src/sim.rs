//! The discrete-event engine.
//!
//! [`Sim<W>`] owns a time-ordered heap of boxed `FnOnce` actions over a world
//! `W`. Domain crates (network, SAN, filesystem) define world types that
//! compose their state and drive them through this one engine, so every
//! queue, link and disk in a scenario shares a single causal timeline.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

/// A scheduled action: the only kind of event the engine knows about.
pub type Action<W> = Box<dyn FnOnce(&mut Sim<W>, &mut W)>;

/// Handle to a cancellable timer scheduled with [`Sim::timer_at`] /
/// [`Sim::timer_after`]. Generation-checked: a handle kept past its timer's
/// firing (or cancellation) safely fails to cancel instead of touching a
/// recycled slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimerId {
    slot: u32,
    gen: u32,
}

/// One slab slot backing a cancellable timer. `pending` is `Some` only while
/// the timer is queued; `gen` increments every time the slot is consumed
/// (fired or cancelled), invalidating outstanding [`TimerId`]s. `key` is the
/// timer's (time, seq) entry in the queue, kept so cancellation stays
/// O(log n).
struct TimerSlot<W> {
    gen: u32,
    pending: Option<Action<W>>,
    key: (SimTime, u64),
}

struct Entry<W> {
    at: SimTime,
    seq: u64,
    act: Action<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties FIFO.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Discrete-event scheduler over a world type `W`.
pub struct Sim<W> {
    now: SimTime,
    seq: u64,
    executed: u64,
    heap: BinaryHeap<Entry<W>>,
    /// Cancellable timers, keyed by firing order. Shares the `seq` counter
    /// with the heap so [`Sim::step`] can merge both sources into one global
    /// FIFO-per-instant order.
    timers: BTreeMap<(SimTime, u64), u32>,
    timer_slots: Vec<TimerSlot<W>>,
    free_timer_slots: Vec<u32>,
    /// Optional hard stop; events scheduled later than this are kept but not
    /// executed by [`Sim::run`].
    horizon: Option<SimTime>,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// A fresh simulation at t = 0 with an empty event queue.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            heap: BinaryHeap::new(),
            timers: BTreeMap::new(),
            timer_slots: Vec::new(),
            free_timer_slots: Vec::new(),
            horizon: None,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far (for engine benchmarks and tests).
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still queued (one-shot actions plus live timers).
    pub fn pending(&self) -> usize {
        self.heap.len() + self.timers.len()
    }

    /// Number of live (uncancelled, unfired) timers. After a full drain the
    /// only way this is nonzero is a leaked watchdog — a retry/grant timer
    /// armed by an exchange that completed without cancelling it — which is
    /// exactly what the chaos harness probes for.
    pub fn timers_pending(&self) -> usize {
        self.timers.len()
    }

    /// Set a hard horizon: [`Sim::run`] stops before executing any event
    /// scheduled strictly after `t`.
    pub fn set_horizon(&mut self, t: SimTime) {
        self.horizon = Some(t);
    }

    /// Schedule `act` at absolute time `at`. Scheduling in the past panics —
    /// that is always a logic error in a causal simulation.
    pub fn at(&mut self, at: SimTime, act: impl FnOnce(&mut Sim<W>, &mut W) + 'static) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={:?}, requested={at:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            act: Box::new(act),
        });
    }

    /// Schedule `act` after a relative delay.
    pub fn after(&mut self, delay: SimDuration, act: impl FnOnce(&mut Sim<W>, &mut W) + 'static) {
        self.at(self.now + delay, act);
    }

    /// Schedule `act` "immediately" (at the current instant, after all
    /// already-queued same-instant events).
    pub fn immediately(&mut self, act: impl FnOnce(&mut Sim<W>, &mut W) + 'static) {
        self.at(self.now, act);
    }

    /// Schedule a cancellable timer at absolute time `at`. Fires exactly like
    /// an [`Sim::at`] event (same global time/FIFO order) unless cancelled
    /// first with [`Sim::cancel_timer`].
    pub fn timer_at(
        &mut self,
        at: SimTime,
        act: impl FnOnce(&mut Sim<W>, &mut W) + 'static,
    ) -> TimerId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={:?}, requested={at:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free_timer_slots.pop() {
            Some(s) => s,
            None => {
                self.timer_slots.push(TimerSlot {
                    gen: 0,
                    pending: None,
                    key: (SimTime::ZERO, 0),
                });
                (self.timer_slots.len() - 1) as u32
            }
        };
        let s = &mut self.timer_slots[slot as usize];
        let gen = s.gen;
        s.pending = Some(Box::new(act));
        s.key = (at, seq);
        self.timers.insert((at, seq), slot);
        TimerId { slot, gen }
    }

    /// Schedule a cancellable timer after a relative delay.
    pub fn timer_after(
        &mut self,
        delay: SimDuration,
        act: impl FnOnce(&mut Sim<W>, &mut W) + 'static,
    ) -> TimerId {
        self.timer_at(self.now + delay, act)
    }

    /// Cancel a live timer. Returns `true` if the timer was still queued (it
    /// will now never fire, and its action is dropped); `false` if it already
    /// fired or was cancelled — the handle is stale and nothing happens.
    pub fn cancel_timer(&mut self, id: TimerId) -> bool {
        let Some(s) = self.timer_slots.get_mut(id.slot as usize) else {
            return false;
        };
        if s.gen != id.gen || s.pending.is_none() {
            return false;
        }
        s.pending = None;
        s.gen = s.gen.wrapping_add(1);
        let key = s.key;
        let removed = self.timers.remove(&key);
        debug_assert!(removed == Some(id.slot));
        self.free_timer_slots.push(id.slot);
        true
    }

    /// Execute exactly one event if any is due (and within the horizon).
    /// Merges the one-shot heap and the timer queue into a single global
    /// (time, seq) order. Returns `false` when both queues are exhausted or
    /// the horizon is reached.
    pub fn step(&mut self, world: &mut W) -> bool {
        let heap_key = self.heap.peek().map(|e| (e.at, e.seq));
        let timer_key = self.timers.first_key_value().map(|(k, _)| *k);
        let (at, take_timer) = match (heap_key, timer_key) {
            (Some(h), Some(t)) => {
                if t < h {
                    (t.0, true)
                } else {
                    (h.0, false)
                }
            }
            (Some(h), None) => (h.0, false),
            (None, Some(t)) => (t.0, true),
            (None, None) => return false,
        };
        if let Some(h) = self.horizon {
            if at > h {
                return false;
            }
        }
        let act = if take_timer {
            let (_, slot) = self.timers.pop_first().expect("peeked above");
            let s = &mut self.timer_slots[slot as usize];
            s.gen = s.gen.wrapping_add(1);
            self.free_timer_slots.push(slot);
            s.pending.take().expect("queued timer has an action")
        } else {
            let e = self.heap.pop().expect("peeked above");
            e.act
        };
        debug_assert!(at >= self.now, "event queue violated time order");
        self.now = at;
        self.executed += 1;
        act(self, world);
        true
    }

    /// Run until the event queue drains or the horizon is reached.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Run until predicate `done` returns true (checked after each event),
    /// the queue drains, or the horizon is reached. Returns true iff the
    /// predicate fired.
    pub fn run_until(&mut self, world: &mut W, mut done: impl FnMut(&W) -> bool) -> bool {
        loop {
            if done(world) {
                return true;
            }
            if !self.step(world) {
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Log {
        entries: Vec<(u64, &'static str)>,
    }

    #[test]
    fn events_execute_in_time_order() {
        let mut sim: Sim<Log> = Sim::new();
        let mut log = Log::default();
        sim.at(SimTime::from_millis(30), |s, w: &mut Log| {
            w.entries.push((s.now().as_nanos(), "c"))
        });
        sim.at(SimTime::from_millis(10), |s, w: &mut Log| {
            w.entries.push((s.now().as_nanos(), "a"))
        });
        sim.at(SimTime::from_millis(20), |s, w: &mut Log| {
            w.entries.push((s.now().as_nanos(), "b"))
        });
        sim.run(&mut log);
        let names: Vec<_> = log.entries.iter().map(|e| e.1).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(sim.executed(), 3);
    }

    #[test]
    fn same_instant_events_are_fifo() {
        let mut sim: Sim<Log> = Sim::new();
        let mut log = Log::default();
        let t = SimTime::from_secs(1);
        for name in ["first", "second", "third"] {
            sim.at(t, move |s, w: &mut Log| {
                w.entries.push((s.now().as_nanos(), name))
            });
        }
        sim.run(&mut log);
        let names: Vec<_> = log.entries.iter().map(|e| e.1).collect();
        assert_eq!(names, vec!["first", "second", "third"]);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut sim: Sim<Log> = Sim::new();
        let mut log = Log::default();
        sim.after(SimDuration::from_secs(1), |s, _w: &mut Log| {
            s.after(SimDuration::from_secs(2), |s2, w2: &mut Log| {
                w2.entries.push((s2.now().as_nanos(), "chained"));
            });
        });
        sim.run(&mut log);
        assert_eq!(log.entries, vec![(3_000_000_000, "chained")]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim: Sim<Log> = Sim::new();
        let mut log = Log::default();
        sim.after(SimDuration::from_secs(5), |s, _w: &mut Log| {
            s.at(SimTime::from_secs(1), |_, _| {});
        });
        sim.run(&mut log);
    }

    #[test]
    fn horizon_stops_run() {
        let mut sim: Sim<Log> = Sim::new();
        let mut log = Log::default();
        sim.at(SimTime::from_secs(1), |s, w: &mut Log| {
            w.entries.push((s.now().as_nanos(), "in"))
        });
        sim.at(SimTime::from_secs(10), |s, w: &mut Log| {
            w.entries.push((s.now().as_nanos(), "out"))
        });
        sim.set_horizon(SimTime::from_secs(5));
        sim.run(&mut log);
        assert_eq!(log.entries.len(), 1);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn run_until_predicate() {
        let mut sim: Sim<Log> = Sim::new();
        let mut log = Log::default();
        for i in 0..100u64 {
            sim.at(SimTime::from_secs(i), |s, w: &mut Log| {
                w.entries.push((s.now().as_nanos(), "tick"))
            });
        }
        let hit = sim.run_until(&mut log, |w| w.entries.len() >= 10);
        assert!(hit);
        assert_eq!(log.entries.len(), 10);
        // The rest stay queued.
        assert_eq!(sim.pending(), 90);
    }

    #[test]
    fn timers_fire_in_global_order_with_heap_events() {
        let mut sim: Sim<Log> = Sim::new();
        let mut log = Log::default();
        let t = SimTime::from_secs(1);
        sim.at(t, |s, w: &mut Log| w.entries.push((s.now().as_nanos(), "a")));
        sim.timer_at(t, |s, w: &mut Log| {
            w.entries.push((s.now().as_nanos(), "b"))
        });
        sim.at(t, |s, w: &mut Log| w.entries.push((s.now().as_nanos(), "c")));
        sim.timer_at(SimTime::from_millis(500), |s, w: &mut Log| {
            w.entries.push((s.now().as_nanos(), "early"))
        });
        sim.run(&mut log);
        let names: Vec<_> = log.entries.iter().map(|e| e.1).collect();
        // Timers interleave with heap events FIFO at the same instant.
        assert_eq!(names, vec!["early", "a", "b", "c"]);
        assert_eq!(sim.executed(), 4);
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn cancelled_timer_never_fires_and_pending_shrinks() {
        let mut sim: Sim<Log> = Sim::new();
        let mut log = Log::default();
        let id = sim.timer_at(SimTime::from_secs(5), |_s, _w: &mut Log| {
            panic!("cancelled timer fired")
        });
        sim.at(SimTime::from_secs(1), move |s, _w: &mut Log| {
            assert!(s.cancel_timer(id), "first cancel wins");
            assert!(!s.cancel_timer(id), "second cancel is a stale no-op");
        });
        assert_eq!(sim.pending(), 2);
        sim.run(&mut log);
        assert_eq!(sim.pending(), 0);
        assert_eq!(sim.executed(), 1, "only the cancelling event ran");
    }

    #[test]
    fn cancel_after_fire_is_stale() {
        let mut sim: Sim<Log> = Sim::new();
        let mut log = Log::default();
        let id = sim.timer_at(SimTime::from_secs(1), |s, w: &mut Log| {
            w.entries.push((s.now().as_nanos(), "fired"))
        });
        sim.run(&mut log);
        assert_eq!(log.entries.len(), 1);
        assert!(!sim.cancel_timer(id), "fired timer cannot be cancelled");
    }

    #[test]
    fn timer_slots_are_recycled_with_fresh_generations() {
        let mut sim: Sim<Log> = Sim::new();
        let mut log = Log::default();
        let a = sim.timer_at(SimTime::from_secs(1), |_s, _w: &mut Log| {});
        assert!(sim.cancel_timer(a));
        // The recycled slot must not be cancellable through the old handle.
        let b = sim.timer_at(SimTime::from_secs(2), |s, w: &mut Log| {
            w.entries.push((s.now().as_nanos(), "b"))
        });
        assert!(!sim.cancel_timer(a), "stale handle must not hit slot reuse");
        sim.run(&mut log);
        assert_eq!(log.entries.len(), 1);
        assert!(!sim.cancel_timer(b));
    }

    #[test]
    fn timer_respects_horizon() {
        let mut sim: Sim<Log> = Sim::new();
        let mut log = Log::default();
        sim.timer_at(SimTime::from_secs(10), |_s, _w: &mut Log| {
            panic!("beyond horizon")
        });
        sim.set_horizon(SimTime::from_secs(5));
        sim.run(&mut log);
        assert_eq!(sim.pending(), 1, "timer stays queued past the horizon");
    }

    #[test]
    fn immediately_runs_at_current_instant() {
        let mut sim: Sim<Log> = Sim::new();
        let mut log = Log::default();
        sim.after(SimDuration::from_secs(2), |s, _w: &mut Log| {
            let t = s.now();
            s.immediately(move |s2, w2: &mut Log| {
                assert_eq!(s2.now(), t);
                w2.entries.push((s2.now().as_nanos(), "imm"));
            });
        });
        sim.run(&mut log);
        assert_eq!(log.entries.len(), 1);
    }
}
