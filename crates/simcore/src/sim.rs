//! The discrete-event engine.
//!
//! [`Sim<W>`] owns a time-ordered heap of boxed `FnOnce` actions over a world
//! `W`. Domain crates (network, SAN, filesystem) define world types that
//! compose their state and drive them through this one engine, so every
//! queue, link and disk in a scenario shares a single causal timeline.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled action: the only kind of event the engine knows about.
pub type Action<W> = Box<dyn FnOnce(&mut Sim<W>, &mut W)>;

struct Entry<W> {
    at: SimTime,
    seq: u64,
    act: Action<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties FIFO.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Discrete-event scheduler over a world type `W`.
pub struct Sim<W> {
    now: SimTime,
    seq: u64,
    executed: u64,
    heap: BinaryHeap<Entry<W>>,
    /// Optional hard stop; events scheduled later than this are kept but not
    /// executed by [`Sim::run`].
    horizon: Option<SimTime>,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// A fresh simulation at t = 0 with an empty event queue.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            heap: BinaryHeap::new(),
            horizon: None,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far (for engine benchmarks and tests).
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still queued.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Set a hard horizon: [`Sim::run`] stops before executing any event
    /// scheduled strictly after `t`.
    pub fn set_horizon(&mut self, t: SimTime) {
        self.horizon = Some(t);
    }

    /// Schedule `act` at absolute time `at`. Scheduling in the past panics —
    /// that is always a logic error in a causal simulation.
    pub fn at(&mut self, at: SimTime, act: impl FnOnce(&mut Sim<W>, &mut W) + 'static) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={:?}, requested={at:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            act: Box::new(act),
        });
    }

    /// Schedule `act` after a relative delay.
    pub fn after(&mut self, delay: SimDuration, act: impl FnOnce(&mut Sim<W>, &mut W) + 'static) {
        self.at(self.now + delay, act);
    }

    /// Schedule `act` "immediately" (at the current instant, after all
    /// already-queued same-instant events).
    pub fn immediately(&mut self, act: impl FnOnce(&mut Sim<W>, &mut W) + 'static) {
        self.at(self.now, act);
    }

    /// Execute exactly one event if any is due (and within the horizon).
    /// Returns `false` when the queue is exhausted or the horizon reached.
    pub fn step(&mut self, world: &mut W) -> bool {
        if let Some(h) = self.horizon {
            if self.heap.peek().is_some_and(|e| e.at > h) {
                return false;
            }
        }
        match self.heap.pop() {
            Some(e) => {
                debug_assert!(e.at >= self.now, "event heap violated time order");
                self.now = e.at;
                self.executed += 1;
                (e.act)(self, world);
                true
            }
            None => false,
        }
    }

    /// Run until the event queue drains or the horizon is reached.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Run until predicate `done` returns true (checked after each event),
    /// the queue drains, or the horizon is reached. Returns true iff the
    /// predicate fired.
    pub fn run_until(&mut self, world: &mut W, mut done: impl FnMut(&W) -> bool) -> bool {
        loop {
            if done(world) {
                return true;
            }
            if !self.step(world) {
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Log {
        entries: Vec<(u64, &'static str)>,
    }

    #[test]
    fn events_execute_in_time_order() {
        let mut sim: Sim<Log> = Sim::new();
        let mut log = Log::default();
        sim.at(SimTime::from_millis(30), |s, w: &mut Log| {
            w.entries.push((s.now().as_nanos(), "c"))
        });
        sim.at(SimTime::from_millis(10), |s, w: &mut Log| {
            w.entries.push((s.now().as_nanos(), "a"))
        });
        sim.at(SimTime::from_millis(20), |s, w: &mut Log| {
            w.entries.push((s.now().as_nanos(), "b"))
        });
        sim.run(&mut log);
        let names: Vec<_> = log.entries.iter().map(|e| e.1).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(sim.executed(), 3);
    }

    #[test]
    fn same_instant_events_are_fifo() {
        let mut sim: Sim<Log> = Sim::new();
        let mut log = Log::default();
        let t = SimTime::from_secs(1);
        for name in ["first", "second", "third"] {
            sim.at(t, move |s, w: &mut Log| {
                w.entries.push((s.now().as_nanos(), name))
            });
        }
        sim.run(&mut log);
        let names: Vec<_> = log.entries.iter().map(|e| e.1).collect();
        assert_eq!(names, vec!["first", "second", "third"]);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut sim: Sim<Log> = Sim::new();
        let mut log = Log::default();
        sim.after(SimDuration::from_secs(1), |s, _w: &mut Log| {
            s.after(SimDuration::from_secs(2), |s2, w2: &mut Log| {
                w2.entries.push((s2.now().as_nanos(), "chained"));
            });
        });
        sim.run(&mut log);
        assert_eq!(log.entries, vec![(3_000_000_000, "chained")]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim: Sim<Log> = Sim::new();
        let mut log = Log::default();
        sim.after(SimDuration::from_secs(5), |s, _w: &mut Log| {
            s.at(SimTime::from_secs(1), |_, _| {});
        });
        sim.run(&mut log);
    }

    #[test]
    fn horizon_stops_run() {
        let mut sim: Sim<Log> = Sim::new();
        let mut log = Log::default();
        sim.at(SimTime::from_secs(1), |s, w: &mut Log| {
            w.entries.push((s.now().as_nanos(), "in"))
        });
        sim.at(SimTime::from_secs(10), |s, w: &mut Log| {
            w.entries.push((s.now().as_nanos(), "out"))
        });
        sim.set_horizon(SimTime::from_secs(5));
        sim.run(&mut log);
        assert_eq!(log.entries.len(), 1);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn run_until_predicate() {
        let mut sim: Sim<Log> = Sim::new();
        let mut log = Log::default();
        for i in 0..100u64 {
            sim.at(SimTime::from_secs(i), |s, w: &mut Log| {
                w.entries.push((s.now().as_nanos(), "tick"))
            });
        }
        let hit = sim.run_until(&mut log, |w| w.entries.len() >= 10);
        assert!(hit);
        assert_eq!(log.entries.len(), 10);
        // The rest stay queued.
        assert_eq!(sim.pending(), 90);
    }

    #[test]
    fn immediately_runs_at_current_instant() {
        let mut sim: Sim<Log> = Sim::new();
        let mut log = Log::default();
        sim.after(SimDuration::from_secs(2), |s, _w: &mut Log| {
            let t = s.now();
            s.immediately(move |s2, w2: &mut Log| {
                assert_eq!(s2.now(), t);
                w2.entries.push((s2.now().as_nanos(), "imm"));
            });
        });
        sim.run(&mut log);
        assert_eq!(log.entries.len(), 1);
    }
}
