//! Time-series instrumentation.
//!
//! The paper's figures are bandwidth-over-time plots produced by SciNet's
//! link monitoring (Figs. 2, 5, 8). [`RateSeries`] reproduces that
//! measurement style: byte completions are recorded with timestamps and then
//! bucketed into fixed windows, yielding a rate sample per window.

use crate::time::{SimDuration, SimTime};
use crate::units::Bandwidth;

/// A single `(time, value)` sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesPoint {
    /// Sample timestamp (window end for bucketed rates).
    pub t: SimTime,
    /// Sample value; unit depends on the series.
    pub value: f64,
}

/// A generic named series of `(time, value)` points.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    /// Display name, e.g. `"link0 Gb/s"`.
    pub name: String,
    /// Samples in nondecreasing time order.
    pub points: Vec<SeriesPoint>,
}

impl TimeSeries {
    /// Empty series with a name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a sample; times must be nondecreasing.
    pub fn push(&mut self, t: SimTime, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|p| p.t <= t),
            "series {} not in time order",
            self.name
        );
        self.points.push(SeriesPoint { t, value });
    }

    /// Maximum value, or 0 for an empty series.
    pub fn max(&self) -> f64 {
        self.points.iter().map(|p| p.value).fold(0.0, f64::max)
    }

    /// Mean value, or 0 for an empty series.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.value).sum::<f64>() / self.points.len() as f64
    }

    /// The deepest contiguous excursion below `threshold` — the
    /// recovery-analysis view of a throughput series after a fault: how far
    /// the rate fell ([`Dip::floor`]) and for how long ([`Dip::duration`]).
    /// Returns `None` when no sample drops below the threshold.
    pub fn dip_below(&self, threshold: f64) -> Option<Dip> {
        let mut best: Option<Dip> = None;
        let mut cur: Option<(SimTime, SimTime, f64)> = None; // (start, end, floor)
        let mut prev_t = SimTime::ZERO;
        for p in &self.points {
            if p.value < threshold {
                match &mut cur {
                    Some((_, end, floor)) => {
                        *end = p.t;
                        *floor = floor.min(p.value);
                    }
                    // The excursion starts when the previous (healthy)
                    // sample ended, i.e. at this window's start.
                    None => cur = Some((prev_t, p.t, p.value)),
                }
            } else if let Some((start, end, floor)) = cur.take() {
                let d = Dip {
                    start,
                    end,
                    floor,
                    duration: end.since(start),
                };
                if best.as_ref().is_none_or(|b| d.duration > b.duration) {
                    best = Some(d);
                }
            }
            prev_t = p.t;
        }
        if let Some((start, end, floor)) = cur {
            let d = Dip {
                start,
                end,
                floor,
                duration: end.since(start),
            };
            if best.as_ref().is_none_or(|b| d.duration > b.duration) {
                best = Some(d);
            }
        }
        best
    }

    /// Mean over points with `t` in `[from, to)`.
    pub fn mean_between(&self, from: SimTime, to: SimTime) -> f64 {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.t >= from && p.t < to)
            .map(|p| p.value)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }
}

/// A contiguous stretch of a series below a threshold — the throughput dip
/// caused by a fault, as reported by [`TimeSeries::dip_below`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Dip {
    /// When the series first fell below the threshold.
    pub start: SimTime,
    /// Last below-threshold sample time.
    pub end: SimTime,
    /// Lowest value reached during the dip.
    pub floor: f64,
    /// `end - start`.
    pub duration: SimDuration,
}

/// Records byte completions and buckets them into fixed windows, producing a
/// bandwidth sample per window — the SciNet-monitor view of a link.
#[derive(Clone, Debug)]
pub struct RateSeries {
    /// Display name, e.g. `"SDSC->Baltimore read"`.
    pub name: String,
    window: SimDuration,
    /// Start of the current open window.
    window_start: SimTime,
    /// Bytes accumulated in the current open window.
    acc: u64,
    /// Total bytes ever recorded.
    total: u64,
    points: Vec<SeriesPoint>, // value = bytes/sec over the window
}

impl RateSeries {
    /// New recorder with the given bucketing window.
    pub fn new(name: impl Into<String>, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "rate window must be positive");
        RateSeries {
            name: name.into(),
            window,
            window_start: SimTime::ZERO,
            acc: 0,
            total: 0,
            points: Vec::new(),
        }
    }

    /// Record `bytes` completing at time `t`. Calls must be nondecreasing in
    /// time; windows that pass with no traffic emit zero-rate samples.
    pub fn record(&mut self, t: SimTime, bytes: u64) {
        self.roll_to(t);
        self.acc += bytes;
        self.total += bytes;
    }

    /// Close out windows up to `t` (exclusive), emitting one sample each.
    fn roll_to(&mut self, t: SimTime) {
        while t >= self.window_start + self.window {
            let end = self.window_start + self.window;
            let rate = self.acc as f64 / self.window.as_secs_f64();
            self.points.push(SeriesPoint { t: end, value: rate });
            self.acc = 0;
            self.window_start = end;
        }
    }

    /// Finish recording at `t`: flush complete windows and (if nonempty) a
    /// final partial window, then return the series in bytes/sec.
    pub fn finish(mut self, t: SimTime) -> TimeSeries {
        self.roll_to(t);
        if self.acc > 0 {
            let span = t.since(self.window_start);
            if !span.is_zero() {
                let rate = self.acc as f64 / span.as_secs_f64();
                self.points.push(SeriesPoint { t, value: rate });
            }
        }
        TimeSeries {
            name: self.name,
            points: self.points,
        }
    }

    /// Total bytes recorded so far.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Overall mean rate from t=0 to `t`.
    pub fn mean_rate(&self, t: SimTime) -> Bandwidth {
        let secs = t.as_secs_f64();
        if secs <= 0.0 {
            Bandwidth::ZERO
        } else {
            Bandwidth(self.total as f64 / secs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MBYTE;

    #[test]
    fn buckets_rates_per_window() {
        let mut rs = RateSeries::new("r", SimDuration::from_secs(1));
        // 100 MB in second 0, 200 MB in second 1.
        rs.record(SimTime::from_millis(500), 100 * MBYTE);
        rs.record(SimTime::from_millis(1500), 200 * MBYTE);
        let ts = rs.finish(SimTime::from_secs(2));
        assert_eq!(ts.points.len(), 2);
        assert!((ts.points[0].value - 100e6).abs() < 1.0);
        assert!((ts.points[1].value - 200e6).abs() < 1.0);
    }

    #[test]
    fn idle_windows_emit_zero() {
        let mut rs = RateSeries::new("r", SimDuration::from_secs(1));
        rs.record(SimTime::from_millis(100), MBYTE);
        rs.record(SimTime::from_millis(3100), MBYTE);
        let ts = rs.finish(SimTime::from_secs(4));
        // windows: [0,1) has data, [1,2) zero, [2,3) zero, [3,4) has data
        assert_eq!(ts.points.len(), 4);
        assert_eq!(ts.points[1].value, 0.0);
        assert_eq!(ts.points[2].value, 0.0);
    }

    #[test]
    fn partial_final_window() {
        let mut rs = RateSeries::new("r", SimDuration::from_secs(1));
        rs.record(SimTime::from_millis(1200), 50 * MBYTE);
        let ts = rs.finish(SimTime::from_millis(1500));
        // [0,1): zero; [1, 1.5): 50 MB over 0.5s = 100 MB/s
        assert_eq!(ts.points.len(), 2);
        assert!((ts.points[1].value - 100e6).abs() < 1.0);
    }

    #[test]
    fn mean_rate_overall() {
        let mut rs = RateSeries::new("r", SimDuration::from_secs(1));
        rs.record(SimTime::from_secs(1), 10 * MBYTE);
        rs.record(SimTime::from_secs(9), 10 * MBYTE);
        let m = rs.mean_rate(SimTime::from_secs(10));
        assert!((m.as_mbyte_per_sec() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn timeseries_stats() {
        let mut ts = TimeSeries::new("x");
        ts.push(SimTime::from_secs(0), 1.0);
        ts.push(SimTime::from_secs(1), 3.0);
        ts.push(SimTime::from_secs(2), 5.0);
        assert_eq!(ts.max(), 5.0);
        assert_eq!(ts.mean(), 3.0);
        assert_eq!(
            ts.mean_between(SimTime::from_secs(1), SimTime::from_secs(3)),
            4.0
        );
    }

    #[test]
    #[should_panic(expected = "rate window must be positive")]
    fn zero_window_rejected() {
        let _ = RateSeries::new("bad", SimDuration::ZERO);
    }

    #[test]
    fn dip_below_finds_longest_excursion() {
        let mut ts = TimeSeries::new("bw");
        for (t, v) in [
            (1, 10.0),
            (2, 10.0),
            (3, 2.0), // short dip
            (4, 10.0),
            (5, 4.0), // long dip: 4..=7
            (6, 1.0),
            (7, 3.0),
            (8, 10.0),
        ] {
            ts.push(SimTime::from_secs(t), v);
        }
        let dip = ts.dip_below(5.0).expect("dip exists");
        assert_eq!(dip.start, SimTime::from_secs(4));
        assert_eq!(dip.end, SimTime::from_secs(7));
        assert_eq!(dip.floor, 1.0);
        assert_eq!(dip.duration, SimDuration::from_secs(3));
    }

    #[test]
    fn dip_below_none_when_healthy() {
        let mut ts = TimeSeries::new("bw");
        ts.push(SimTime::from_secs(1), 10.0);
        ts.push(SimTime::from_secs(2), 9.0);
        assert!(ts.dip_below(5.0).is_none());
    }

    #[test]
    fn dip_still_open_at_series_end_is_reported() {
        let mut ts = TimeSeries::new("bw");
        ts.push(SimTime::from_secs(1), 10.0);
        ts.push(SimTime::from_secs(2), 1.0);
        ts.push(SimTime::from_secs(3), 1.0);
        let dip = ts.dip_below(5.0).expect("open dip");
        assert_eq!(dip.start, SimTime::from_secs(1));
        assert_eq!(dip.end, SimTime::from_secs(3));
    }
}
