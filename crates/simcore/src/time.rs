//! Simulated time: nanosecond-resolution instants and durations.
//!
//! A `u64` nanosecond counter covers ~584 years of simulated time, far beyond
//! any experiment in the paper (the longest runs are multi-hour Enzo
//! checkpoint campaigns).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time, measured in nanoseconds since the start of
/// the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

pub(crate) const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds (rounds to nearest nanosecond).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "SimTime cannot be negative: {s}");
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration since an earlier instant. Saturates at zero if `earlier` is
    /// actually later (callers comparing racing completions rely on this).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Greatest representable duration; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds (rounds to nearest nanosecond;
    /// negative inputs clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration(0);
        }
        let ns = s * NANOS_PER_SEC as f64;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True when zero-length.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < NANOS_PER_SEC {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrip_seconds() {
        let t = SimTime::from_secs(42);
        assert_eq!(t.as_nanos(), 42 * NANOS_PER_SEC);
        assert!((t.as_secs_f64() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn time_add_duration() {
        let t = SimTime::from_millis(5) + SimDuration::from_micros(250);
        assert_eq!(t.as_nanos(), 5_000_000 + 250_000);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.since(a), SimDuration::from_secs(1));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_from_f64_clamps_negative() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn duration_from_f64_huge_saturates() {
        assert_eq!(SimDuration::from_secs_f64(1e300), SimDuration::MAX);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(10) * 3;
        assert_eq!(d, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(15));
        assert_eq!(
            SimDuration::from_millis(1).saturating_sub(SimDuration::from_millis(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.0us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.00ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn time_ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }
}
