//! Deterministic multiplicative hashing for simulation state.
//!
//! `std::collections::HashMap`'s default `RandomState` seeds itself from the
//! host at process start, so two runs of the same binary hash — and
//! therefore *iterate* — differently. That is fine for sets whose iteration
//! order never escapes, but a simulation that promises bit-identical replays
//! cannot risk a per-process seed leaking into results. This module provides
//! a fixed-key multiplicative hasher in the style of Firefox's FxHash
//! (rotate, xor, multiply by a large odd constant per word): the hash of a
//! key is a pure function of its bytes, identical across runs, processes
//! and thread counts.
//!
//! Determinism argument: with the seed-free hasher, a `HashMap`'s bucket
//! layout depends only on the sequence of inserts/removes applied to it,
//! which in this workspace is itself deterministic (all randomness flows
//! through seeded RNGs, and the event engine breaks ties by insertion
//! order). Iteration order is thus reproducible run-to-run — but it is
//! still *arbitrary* (not sorted), so any output that feeds a report or a
//! figure must sort explicitly rather than rely on map order.
//!
//! No external dependency: this is ~40 lines of arithmetic, and keeping the
//! build hermetic is a project constraint (`CARGO_NET_OFFLINE`).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Large odd constant (from the golden-ratio family) used by FxHash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Fixed-key multiplicative hasher: `state = (rotl(state, 5) ^ word) * SEED`
/// per 8-byte word, with a tail loop for the remainder.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            // Fold the length in so "ab\0" and "ab" can't collide trivially.
            self.mix(u64::from_le_bytes(tail) ^ ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// Seed-free `BuildHasher` — `Default` yields the same hasher every time.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// [`FxHasher`] with a full-avalanche finalizer (the splitmix64 mixer).
///
/// Plain multiplicative hashing only propagates entropy *upward*: the low
/// `k` bits of `key * SEED` depend on nothing above the low `k` bits of
/// `key`. `HashMap` derives its bucket index from the low hash bits, so a
/// key population whose entropy sits in the *high* bits — composed ids
/// like `(actor << 32) | seq` with few distinct `seq` values — collapses
/// onto a handful of buckets and probes degrade to chain scans (measured:
/// ~60x on a million-entry table). The finalizer is a bijection, so
/// determinism and key uniqueness arguments are unchanged; use this for
/// maps keyed by structured/composed integers, plain Fx for strings and
/// dense counters.
#[derive(Default, Clone)]
pub struct FxFinalHasher(FxHasher);

impl Hasher for FxFinalHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // splitmix64 finalizer: xor-shift/multiply rounds with full
        // avalanche — every input bit affects every output bit.
        let mut z = self.0.finish();
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.0.write(bytes);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.0.write_u8(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.0.write_u32(n);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0.write_u64(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.0.write_usize(n);
    }
}

/// Seed-free finalizing `BuildHasher`.
pub type FxFinalBuildHasher = BuildHasherDefault<FxFinalHasher>;

/// `HashMap` for structured-integer keys: deterministic hashing with a
/// full-avalanche finalizer (see [`FxFinalHasher`]).
pub type FxFinalHashMap<K, V> = HashMap<K, V, FxFinalBuildHasher>;

/// `HashMap` with deterministic (but still arbitrary-order) hashing.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` with deterministic hashing.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn same_input_same_hash() {
        assert_eq!(hash_of(&"alpha/beta"), hash_of(&"alpha/beta"));
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
    }

    #[test]
    fn different_inputs_differ() {
        // Not a collision-resistance claim — just a smoke test that the
        // mixing actually mixes.
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ab\0"));
    }

    #[test]
    fn map_behaves_like_a_map() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(format!("key-{i}"), i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&format!("key-{i}")), Some(&i));
        }
    }

    #[test]
    fn iteration_order_reproducible_within_process() {
        // Two maps built by the same insert sequence iterate identically —
        // the property the sim's replay guarantee leans on.
        let build = || {
            let mut m: FxHashMap<u64, u64> = FxHashMap::default();
            for i in 0..257 {
                m.insert(i * 7919, i);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn known_value_pinned() {
        // Pin one hash value so an accidental algorithm change (which would
        // silently reorder every map in the sim) fails a test instead.
        let mut hasher = FxHasher::default();
        hasher.write_u64(0xdead_beef);
        assert_eq!(hasher.finish(), 0xdead_beefu64.wrapping_mul(SEED));
    }
}
