//! Data-size and bandwidth units.
//!
//! The paper mixes units freely (Gb/s links, MB/s transfer rates, TB
//! datasets). To keep every crate honest, sizes are always **bytes** (`u64`)
//! and rates are always **bytes per second** (`f64`), with named constructors
//! for the units the paper uses.

use crate::time::SimDuration;
use std::fmt;

/// Bytes in a kilobyte (decimal, as used for disk/network marketing numbers).
pub const KBYTE: u64 = 1_000;
/// Bytes in a megabyte.
pub const MBYTE: u64 = 1_000_000;
/// Bytes in a gigabyte.
pub const GBYTE: u64 = 1_000_000_000;
/// Bytes in a terabyte.
pub const TBYTE: u64 = 1_000_000_000_000;
/// Bytes per second of a 1 Mb/s link.
pub const MBIT: f64 = 1_000_000.0 / 8.0;
/// Bytes per second of a 1 Gb/s link.
pub const GBIT: f64 = 1_000_000_000.0 / 8.0;

/// Binary kibibyte — filesystem block sizes are powers of two.
pub const KIB: u64 = 1 << 10;
/// Binary mebibyte.
pub const MIB: u64 = 1 << 20;
/// Binary gibibyte.
pub const GIB: u64 = 1 << 30;

/// A byte count with human-readable formatting.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Kilobytes (decimal).
    pub const fn kb(n: u64) -> Self {
        ByteSize(n * KBYTE)
    }
    /// Megabytes (decimal).
    pub const fn mb(n: u64) -> Self {
        ByteSize(n * MBYTE)
    }
    /// Gigabytes (decimal).
    pub const fn gb(n: u64) -> Self {
        ByteSize(n * GBYTE)
    }
    /// Terabytes (decimal).
    pub const fn tb(n: u64) -> Self {
        ByteSize(n * TBYTE)
    }
    /// Mebibytes (binary) — used for filesystem block sizes.
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * MIB)
    }
    /// Kibibytes (binary).
    pub const fn kib(n: u64) -> Self {
        ByteSize(n * KIB)
    }
    /// Raw byte count.
    pub const fn bytes(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= TBYTE {
            write!(f, "{:.2}TB", b as f64 / TBYTE as f64)
        } else if b >= GBYTE {
            write!(f, "{:.2}GB", b as f64 / GBYTE as f64)
        } else if b >= MBYTE {
            write!(f, "{:.2}MB", b as f64 / MBYTE as f64)
        } else if b >= KBYTE {
            write!(f, "{:.2}KB", b as f64 / KBYTE as f64)
        } else {
            write!(f, "{b}B")
        }
    }
}

/// A data rate in bytes per second.
///
/// Stored as `f64` because rates are the output of the max-min fair-share
/// solver; they are never used as exact quantities, only to compute
/// durations.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(pub f64);

impl Bandwidth {
    /// Zero rate.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// From megabits per second.
    pub fn mbit(n: f64) -> Self {
        Bandwidth(n * MBIT)
    }
    /// From gigabits per second (the unit for every link in the paper).
    pub fn gbit(n: f64) -> Self {
        Bandwidth(n * GBIT)
    }
    /// From megabytes per second (the unit for every result in the paper).
    pub fn mbyte(n: f64) -> Self {
        Bandwidth(n * MBYTE as f64)
    }
    /// From gigabytes per second.
    pub fn gbyte(n: f64) -> Self {
        Bandwidth(n * GBYTE as f64)
    }

    /// Bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }
    /// Megabytes per second — the paper's reporting unit (Figs. 2, 11).
    pub fn as_mbyte_per_sec(self) -> f64 {
        self.0 / MBYTE as f64
    }
    /// Gigabits per second — the paper's reporting unit (Figs. 5, 8).
    pub fn as_gbit_per_sec(self) -> f64 {
        self.0 / GBIT
    }

    /// Time to move `bytes` at this rate. Returns [`SimDuration::MAX`] for a
    /// zero/invalid rate so stalled flows never "complete".
    pub fn time_for(self, bytes: u64) -> SimDuration {
        if self.0 <= 0.0 {
            return SimDuration::MAX;
        }
        SimDuration::from_secs_f64(bytes as f64 / self.0)
    }

    /// Scale by a dimensionless efficiency factor.
    pub fn scaled(self, factor: f64) -> Bandwidth {
        Bandwidth(self.0 * factor)
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= GBYTE as f64 {
            write!(f, "{:.2}GB/s", self.0 / GBYTE as f64)
        } else if self.0 >= MBYTE as f64 {
            write!(f, "{:.1}MB/s", self.0 / MBYTE as f64)
        } else if self.0 >= KBYTE as f64 {
            write!(f, "{:.1}KB/s", self.0 / KBYTE as f64)
        } else {
            write!(f, "{:.1}B/s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbit_link_rates() {
        // A GbE link moves 125 MB/s.
        let gbe = Bandwidth::gbit(1.0);
        assert!((gbe.as_mbyte_per_sec() - 125.0).abs() < 1e-9);
        // 10 GbE is 10 Gb/s.
        assert!((Bandwidth::gbit(10.0).as_gbit_per_sec() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn time_for_transfer() {
        // 1 GB at 1 GB/s takes one second.
        let d = Bandwidth::gbyte(1.0).time_for(GBYTE);
        assert_eq!(d, SimDuration::from_secs(1));
    }

    #[test]
    fn time_for_zero_rate_is_infinite() {
        assert_eq!(Bandwidth::ZERO.time_for(1), SimDuration::MAX);
    }

    #[test]
    fn bytesize_constructors() {
        assert_eq!(ByteSize::tb(50).bytes(), 50 * TBYTE); // NVO dataset
        assert_eq!(ByteSize::mib(1).bytes(), 1 << 20); // MPI-IO transfer size
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", ByteSize::gb(536)), "536.00GB");
        assert_eq!(format!("{}", Bandwidth::mbyte(720.0)), "720.0MB/s");
        assert_eq!(format!("{}", Bandwidth::gbyte(6.0)), "6.00GB/s");
    }

    #[test]
    fn scaled_efficiency() {
        let raw = Bandwidth::gbit(10.0);
        let goodput = raw.scaled(0.94);
        assert!((goodput.as_gbit_per_sec() - 9.4).abs() < 1e-9);
    }
}
