//! The fluid flow engine: long-lived bulk transfers over a routed topology,
//! re-solved to max-min fair rates whenever the active flow set changes.
//!
//! ## Model
//!
//! * A **flow** is `bytes` of bulk data from `src` to `dst`, optionally
//!   window-capped (`window / RTT`, the TCP bandwidth-delay-product limit).
//!   Rates come from [`crate::fairshare::Solver`].
//! * **Settling** advances every flow's remaining-byte count to the current
//!   instant at its last-computed rate. The engine settles before any state
//!   change, so rates are piecewise-constant and exact.
//! * Rates are re-solved **incrementally**: mutations mark the links they
//!   touch dirty, all same-instant changes coalesce into a single
//!   end-of-instant solve of just the affected connected components, and an
//!   add/remove whose path crosses only unsaturated clean links skips the
//!   solver entirely. Because components are arithmetically independent and
//!   the solver freezes constraints with exact comparisons, the incremental
//!   rates are bit-for-bit identical to a global re-solve.
//! * The single pending completion event is a **cancellable timer**
//!   ([`simcore::TimerId`]), re-registered whenever the earliest drain time
//!   moves — replacing the classic stale-epoch guard and keeping the event
//!   heap free of dead closures.
//! * **Messages** are control-plane RPCs: they experience path latency,
//!   serialization at path capacity and a fixed software overhead, but do
//!   not consume modeled bandwidth (GPFS daemon traffic is negligible next
//!   to NSD bulk data).
//! * **Monitoring** takes a bandwidth sample per link and per flow-tag every
//!   window — the same view SciNet's monitors gave the paper's authors —
//!   and optionally re-draws jittered link capacities each tick.

use crate::fairshare::{FlatFlow, Solver};
use crate::topology::{LinkId, NodeId, Topology};
use rand::rngs::StdRng;
use simcore::{det_rng, Action, RateSeries, Sim, SimDuration, SimTime, TimeSeries, TimerId};
use std::collections::BTreeMap;

/// Worlds that embed a [`Network`] keyed to themselves.
pub trait NetWorld: Sized + 'static {
    /// Access the embedded network.
    fn net(&mut self) -> &mut Network<Self>;
}

/// Identifies an active flow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u64);

/// Parameters of a new flow.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload size in bytes (must be > 0).
    pub bytes: u64,
    /// Optional TCP-style window in bytes; caps the flow at `window / RTT`.
    pub window: Option<u64>,
    /// Accounting tag; monitored flows aggregate per tag (e.g. read vs
    /// write, or per remote site).
    pub tag: u32,
}

impl FlowSpec {
    /// Unwindowed, untagged bulk flow.
    pub fn bulk(src: NodeId, dst: NodeId, bytes: u64) -> Self {
        FlowSpec {
            src,
            dst,
            bytes,
            window: None,
            tag: 0,
        }
    }

    /// Set the window.
    pub fn with_window(mut self, window: u64) -> Self {
        self.window = Some(window);
        self
    }

    /// Set the accounting tag.
    pub fn with_tag(mut self, tag: u32) -> Self {
        self.tag = tag;
        self
    }
}

/// Rates above this are treated as "instantaneous" to avoid `inf * 0` NaNs.
const RATE_CLAMP: f64 = 1e15;
/// A flow with fewer remaining bytes than this is drained.
const DRAIN_EPS: f64 = 1.0;
/// Relative headroom a fast-path flow add must leave on every link it
/// crosses. The margin absorbs float drift in the incrementally maintained
/// link loads; an add that cannot clear it falls back to the exact solver.
const FAST_ADD_MARGIN: f64 = 1e-6;

/// Runtime health of one directed link, mutated by fault injection.
#[derive(Clone, Copy, Debug)]
struct LinkHealth {
    /// A down link carries no flow bytes and drops control messages.
    up: bool,
    /// Multiplicative capacity factor in (0, 1]; models partial degradation
    /// (e.g. a lambda dropping from 10 Gb/s to a protected 2.5 Gb/s path).
    degrade: f64,
}

struct FlowState<W> {
    path: Vec<LinkId>,
    path_u32: Vec<u32>,
    cap: f64,
    remaining: f64,
    rate: f64,
    tag: u32,
    delivery_delay: SimDuration,
    on_complete: Option<Action<W>>,
}

struct Monitor {
    window: SimDuration,
    link_series: Vec<RateSeries>,
    tag_series: BTreeMap<u32, RateSeries>,
    tag_names: BTreeMap<u32, String>,
    enabled_links: Vec<bool>,
}

/// The flow-level network simulator. Embed one in your world and implement
/// [`NetWorld`]; drive it through the associated functions that take
/// `(&mut Sim<W>, &mut W)`.
pub struct Network<W> {
    topo: Topology,
    effective_capacity: Vec<f64>,
    health: Vec<LinkHealth>,
    flows: BTreeMap<u64, FlowState<W>>,
    next_id: u64,
    last_settle: SimTime,
    monitor: Option<Monitor>,
    rng: StdRng,
    /// Fixed software/NIC overhead added to every control message.
    pub msg_overhead: SimDuration,
    total_delivered: f64,

    // ---- incremental-solve state ----
    solver: Solver,
    /// Per-link sum of stored rates of crossing flows. Maintained
    /// incrementally on fast-path adds/removes; rebuilt exactly for every
    /// solver-touched link after a solve.
    link_load: Vec<f64>,
    /// Per-link count of crossing flows.
    link_active: Vec<u32>,
    /// Per-link saturation flag from the last solve that touched the link.
    link_saturated: Vec<bool>,
    dirty_links: Vec<u32>,
    dirty_link_flag: Vec<bool>,
    have_dirty: bool,
    /// Whether an end-of-instant solve event is already queued.
    solve_scheduled: bool,
    /// The single pending completion timer, if any.
    tick_timer: Option<TimerId>,

    // ---- reusable scratch (no per-call allocation once warmed up) ----
    rc_paths: Vec<u32>,
    rc_meta: Vec<FlatFlow>,
    rc_ids: Vec<u64>,
    rc_rates: Vec<f64>,
    nw_uf: Vec<u32>,
    nw_seen: Vec<bool>,
    nw_touched: Vec<u32>,
    nw_root_dirty: Vec<bool>,
    nw_dirty_roots: Vec<u32>,
    drain_ids: Vec<u64>,
}

/// Path-halving union-find lookup over a parent array.
fn uf_find(parent: &mut [u32], mut l: u32) -> u32 {
    while parent[l as usize] != l {
        let p = parent[l as usize];
        parent[l as usize] = parent[p as usize];
        l = parent[l as usize];
    }
    l
}

impl<W: NetWorld> Network<W> {
    /// Wrap a topology. `seed` drives link-capacity jitter only.
    pub fn new(topo: Topology, seed: u64) -> Self {
        let nl = topo.link_count();
        let caps: Vec<f64> = topo.links().iter().map(|l| l.capacity).collect();
        let health = vec![
            LinkHealth {
                up: true,
                degrade: 1.0
            };
            nl
        ];
        Network {
            topo,
            effective_capacity: caps,
            health,
            flows: BTreeMap::new(),
            next_id: 0,
            last_settle: SimTime::ZERO,
            monitor: None,
            rng: det_rng(seed, "simnet"),
            msg_overhead: SimDuration::from_micros(30),
            total_delivered: 0.0,
            solver: Solver::new(),
            link_load: vec![0.0; nl],
            link_active: vec![0; nl],
            link_saturated: vec![false; nl],
            dirty_links: Vec::new(),
            dirty_link_flag: vec![false; nl],
            have_dirty: false,
            solve_scheduled: false,
            tick_timer: None,
            rc_paths: Vec::new(),
            rc_meta: Vec::new(),
            rc_ids: Vec::new(),
            rc_rates: Vec::new(),
            nw_uf: vec![0; nl],
            nw_seen: vec![false; nl],
            nw_touched: Vec::new(),
            nw_root_dirty: vec![false; nl],
            nw_dirty_roots: Vec::new(),
            drain_ids: Vec::new(),
        }
    }

    /// The underlying topology.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes fully drained from all flows so far.
    pub fn total_delivered(&self) -> u64 {
        self.total_delivered as u64
    }

    /// Current rate of a flow in bytes/sec, if active.
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id.0).map(|f| f.rate)
    }

    /// Remaining bytes of a flow, if active.
    pub fn flow_remaining(&self, id: FlowId) -> Option<u64> {
        self.flows.get(&id.0).map(|f| f.remaining.max(0.0) as u64)
    }

    /// Sum of active flow rates crossing a link (bytes/sec).
    pub fn link_throughput(&self, link: LinkId) -> f64 {
        self.flows
            .values()
            .filter(|f| f.path.contains(&link))
            .map(|f| f.rate)
            .sum()
    }

    /// Round-trip propagation time between two nodes (twice the one-way
    /// shortest-path delay plus two message overheads).
    pub fn rtt(&self, a: NodeId, b: NodeId) -> SimDuration {
        let fwd = self
            .topo
            .route(a, b)
            .map(|p| self.topo.path_delay(&p))
            .unwrap_or(SimDuration::MAX);
        let back = self
            .topo
            .route(b, a)
            .map(|p| self.topo.path_delay(&p))
            .unwrap_or(SimDuration::MAX);
        fwd + back + self.msg_overhead * 2
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Whether a link is currently up.
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.health[link.0 as usize].up
    }

    /// Current degradation factor of a link (1.0 = full capacity).
    pub fn link_degrade(&self, link: LinkId) -> f64 {
        self.health[link.0 as usize].degrade
    }

    /// All directed links whose name matches `name` exactly, or is a duplex
    /// half of it (`"{name}>"` / `"{name}<"`). Fault plans address links by
    /// the topology-builder name, which covers both directions at once.
    pub fn links_named(&self, name: &str) -> Vec<LinkId> {
        let fwd = format!("{name}>");
        let rev = format!("{name}<");
        self.topo
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.name == name || l.name == fwd || l.name == rev)
            .map(|(i, _)| LinkId(i as u32))
            .collect()
    }

    /// Every directed link with an endpoint at `node` — the set to take
    /// down to partition the node off the network.
    pub fn links_touching(&self, node: NodeId) -> Vec<LinkId> {
        self.topo
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.from == node || l.to == node)
            .map(|(i, _)| LinkId(i as u32))
            .collect()
    }

    /// Take a link down or bring it back up. While down the link carries no
    /// flow bytes (flows routed across it stall at rate zero and resume on
    /// restore) and control messages crossing it are silently lost — the
    /// client-side timeout/retry machinery is responsible for recovery.
    pub fn set_link_up(sim: &mut Sim<W>, w: &mut W, link: LinkId, up: bool) {
        let now = sim.now();
        {
            let net = w.net();
            net.settle(now);
            net.health[link.0 as usize].up = up;
            net.refresh_capacity(link.0 as usize);
            net.mark_link_dirty(link.0);
        }
        Self::schedule_solve(sim, w);
    }

    /// Degrade (or restore) a link to `factor` × nominal capacity,
    /// `0 < factor <= 1`. Independent of up/down state.
    pub fn set_link_degraded(sim: &mut Sim<W>, w: &mut W, link: LinkId, factor: f64) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "degrade factor {factor} outside (0, 1]; use set_link_up for outages"
        );
        let now = sim.now();
        {
            let net = w.net();
            net.settle(now);
            net.health[link.0 as usize].degrade = factor;
            net.refresh_capacity(link.0 as usize);
            net.mark_link_dirty(link.0);
        }
        Self::schedule_solve(sim, w);
    }

    /// Nominal capacity of link `i` after health (down/degrade) is applied;
    /// jitter is layered on top of this at monitor ticks.
    fn base_capacity(&self, i: usize) -> f64 {
        let h = self.health[i];
        if h.up {
            self.topo.links()[i].capacity * h.degrade
        } else {
            0.0
        }
    }

    fn refresh_capacity(&mut self, i: usize) {
        self.effective_capacity[i] = self.base_capacity(i);
    }

    /// Whether every link of `path` is currently up.
    fn path_is_live(&self, path: &[LinkId]) -> bool {
        path.iter().all(|l| self.health[l.0 as usize].up)
    }

    // ------------------------------------------------------------------
    // Flow lifecycle
    // ------------------------------------------------------------------

    /// Start a bulk flow; `on_complete` fires when the final byte arrives at
    /// the destination.
    pub fn start_flow(
        sim: &mut Sim<W>,
        w: &mut W,
        spec: FlowSpec,
        on_complete: impl FnOnce(&mut Sim<W>, &mut W) + 'static,
    ) -> FlowId {
        assert!(spec.bytes > 0, "flows must carry at least one byte");
        let now = sim.now();
        let (id, needs_solve) = {
            let net = w.net();
            net.settle(now);
            let path = net
                .topo
                .route(spec.src, spec.dst)
                .unwrap_or_else(|| panic!("no route {:?} -> {:?}", spec.src, spec.dst));
            let delivery_delay = net.topo.path_delay(&path);
            let rtt = {
                // Window cap uses the full round trip as TCP would see it.
                let back = net
                    .topo
                    .route(spec.dst, spec.src)
                    .map(|p| net.topo.path_delay(&p))
                    .unwrap_or(delivery_delay);
                delivery_delay + back
            };
            let cap = match spec.window {
                Some(wnd) => {
                    let rtt_s = rtt.as_secs_f64().max(1e-9);
                    wnd as f64 / rtt_s
                }
                None => f64::INFINITY,
            };
            let id = net.next_id;
            net.next_id += 1;
            let path_u32: Vec<u32> = path.iter().map(|l| l.0).collect();

            // Fast path: a cap-limited flow that fits (with margin) under
            // every link it crosses, none of which is saturated or pending a
            // re-solve, is cap-frozen by the solver with every other rate
            // unchanged — so the solve can be skipped outright. Empty-path
            // flows solve trivially. Everything else marks its path dirty
            // and joins the end-of-instant batch solve.
            let mut rate = 0.0;
            let mut needs = false;
            if path_u32.is_empty() {
                rate = cap.min(RATE_CLAMP);
            } else {
                let fast = cap.is_finite()
                    && path_u32.iter().all(|&l| {
                        let li = l as usize;
                        let c = net.effective_capacity[li];
                        !net.link_saturated[li]
                            && !net.dirty_link_flag[li]
                            && net.link_load[li] + cap <= c - FAST_ADD_MARGIN * c
                    });
                for &l in &path_u32 {
                    net.link_active[l as usize] += 1;
                }
                if fast {
                    rate = cap.min(RATE_CLAMP);
                    for &l in &path_u32 {
                        net.link_load[l as usize] += rate;
                    }
                } else {
                    for &l in &path_u32 {
                        net.mark_link_dirty(l);
                    }
                    needs = true;
                }
            }
            net.flows.insert(
                id,
                FlowState {
                    path,
                    path_u32,
                    cap,
                    remaining: spec.bytes as f64,
                    rate,
                    tag: spec.tag,
                    delivery_delay,
                    on_complete: Some(Box::new(on_complete)),
                },
            );
            (id, needs)
        };
        if needs_solve {
            Self::schedule_solve(sim, w);
        } else {
            Self::reschedule_tick(sim, w);
        }
        FlowId(id)
    }

    /// Add bytes to an active flow (used by streaming layers to keep a
    /// connection's flow alive across successive requests). Returns false if
    /// the flow already drained.
    pub fn extend_flow(sim: &mut Sim<W>, w: &mut W, id: FlowId, extra: u64) -> bool {
        let now = sim.now();
        let ok = {
            let net = w.net();
            net.settle(now);
            match net.flows.get_mut(&id.0) {
                Some(f) => {
                    f.remaining += extra as f64;
                    true
                }
                None => false,
            }
        };
        if ok {
            Self::reschedule_tick(sim, w);
        }
        ok
    }

    /// Cancel a flow, dropping its completion callback. Returns remaining
    /// bytes, or `None` if it had already drained.
    pub fn cancel_flow(sim: &mut Sim<W>, w: &mut W, id: FlowId) -> Option<u64> {
        let now = sim.now();
        let (remaining, needs_solve) = {
            let net = w.net();
            net.settle(now);
            let f = net.flows.remove(&id.0)?;
            let needs = net.note_removed(&f);
            (f.remaining.max(0.0) as u64, needs)
        };
        if needs_solve {
            Self::schedule_solve(sim, w);
        } else {
            Self::reschedule_tick(sim, w);
        }
        Some(remaining)
    }

    /// Cancel every active flow carrying `tag`, dropping their completion
    /// callbacks. Returns how many flows were cancelled. Used by phased
    /// workloads that replace one traffic pattern with another.
    pub fn cancel_tagged(sim: &mut Sim<W>, w: &mut W, tag: u32) -> usize {
        let now = sim.now();
        let (n, needs_solve) = {
            let net = w.net();
            net.settle(now);
            let mut ids = std::mem::take(&mut net.drain_ids);
            ids.clear();
            ids.extend(
                net.flows
                    .iter()
                    .filter(|(_, f)| f.tag == tag)
                    .map(|(id, _)| *id),
            );
            let n = ids.len();
            let mut needs = false;
            for &id in &ids {
                let f = net.flows.remove(&id).expect("id from iteration");
                needs |= net.note_removed(&f);
            }
            net.drain_ids = ids;
            (n, needs)
        };
        if n > 0 {
            if needs_solve {
                Self::schedule_solve(sim, w);
            } else {
                Self::reschedule_tick(sim, w);
            }
        }
        n
    }

    /// Deliver a control-plane message: latency + serialization + fixed
    /// overhead, no bandwidth consumption. If any link on the route is
    /// currently down (fault injection) the message is silently lost and
    /// `false` is returned — exactly the failure a request timeout guards
    /// against. Panics only when no route exists in the topology at all.
    pub fn send_msg(
        sim: &mut Sim<W>,
        w: &mut W,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        on_deliver: impl FnOnce(&mut Sim<W>, &mut W) + 'static,
    ) -> bool {
        let net = w.net();
        let path = net
            .topo
            .route(src, dst)
            .unwrap_or_else(|| panic!("no route {src:?} -> {dst:?}"));
        if !net.path_is_live(&path) {
            return false;
        }
        let mut delay = net.topo.path_delay(&path) + net.msg_overhead;
        let cap = net.topo.path_capacity(&path);
        if cap.is_finite() && cap > 0.0 {
            delay += SimDuration::from_secs_f64(bytes as f64 / cap);
        }
        sim.after(delay, on_deliver);
        true
    }

    // ------------------------------------------------------------------
    // Monitoring
    // ------------------------------------------------------------------

    /// Begin periodic monitoring with the given sampling window. Monitored
    /// links produce one bandwidth sample per window; links with a nonzero
    /// `jitter_frac` also re-draw their effective capacity each tick.
    pub fn enable_monitoring(sim: &mut Sim<W>, w: &mut W, window: SimDuration) {
        {
            let net = w.net();
            assert!(net.monitor.is_none(), "monitoring already enabled");
            let nl = net.topo.link_count();
            let link_series = net
                .topo
                .links()
                .iter()
                .map(|l| RateSeries::new(l.name.clone(), window))
                .collect();
            net.monitor = Some(Monitor {
                window,
                link_series,
                tag_series: BTreeMap::new(),
                tag_names: BTreeMap::new(),
                enabled_links: vec![true; nl],
            });
        }
        Self::monitor_tick(sim, w);
    }

    /// Give a tag a display name; flows with this tag get their own series.
    pub fn register_tag(&mut self, tag: u32, name: impl Into<String>) {
        let name = name.into();
        if let Some(m) = &mut self.monitor {
            m.tag_names.insert(tag, name.clone());
            m.tag_series
                .entry(tag)
                .or_insert_with(|| RateSeries::new(name, m.window));
        }
    }

    fn monitor_tick(sim: &mut Sim<W>, w: &mut W) {
        let now = sim.now();
        let (window, any_jitter) = {
            let net = w.net();
            net.settle(now);
            let Some(m) = &net.monitor else { return };
            let window = m.window;
            // Re-draw jittered link capacities, if any links request it.
            // Jitter layers on top of fault state (down stays zero).
            let mut any_jitter = false;
            for i in 0..net.topo.link_count() {
                if net.topo.links()[i].jitter_frac > 0.0 {
                    let frac = net.topo.links()[i].jitter_frac;
                    net.effective_capacity[i] =
                        net.base_capacity(i) * simcore::rng::jitter(&mut net.rng, frac);
                    net.mark_link_dirty(i as u32);
                    any_jitter = true;
                }
            }
            (window, any_jitter)
        };
        if any_jitter {
            Self::schedule_solve(sim, w);
        } else {
            Self::reschedule_tick(sim, w);
        }
        sim.after(window, |sim, w| Self::monitor_tick(sim, w));
    }

    /// Stop monitoring and return all per-link and per-tag series
    /// (bytes/sec samples). Links carry their topology names.
    pub fn finish_monitoring(&mut self, t: SimTime) -> Vec<TimeSeries> {
        self.settle(t);
        let Some(m) = self.monitor.take() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (i, rs) in m.link_series.into_iter().enumerate() {
            if m.enabled_links[i] {
                out.push(rs.finish(t));
            }
        }
        for (_tag, rs) in m.tag_series {
            out.push(rs.finish(t));
        }
        out
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Advance all flows to `now` at their current rates, crediting monitor
    /// accumulators.
    fn settle(&mut self, now: SimTime) {
        let dt = now.since(self.last_settle).as_secs_f64();
        self.last_settle = now;
        if dt <= 0.0 || self.flows.is_empty() {
            return;
        }
        // Bytes accrued over (last_settle, now]; record them just inside
        // the interval so a settle landing exactly on a monitoring-window
        // boundary credits the window the bytes were earned in, not the
        // next one.
        let t_rec = SimTime::from_nanos(now.as_nanos().saturating_sub(1));
        for f in self.flows.values_mut() {
            let moved = (f.rate * dt).min(f.remaining);
            f.remaining -= moved;
            self.total_delivered += moved;
            if moved > 0.0 {
                if let Some(m) = &mut self.monitor {
                    let b = moved as u64;
                    for l in &f.path {
                        m.link_series[l.0 as usize].record(t_rec, b);
                    }
                    if let Some(ts) = m.tag_series.get_mut(&f.tag) {
                        ts.record(t_rec, b);
                    }
                }
            }
        }
    }

    /// Mark one link as needing a re-solve.
    fn mark_link_dirty(&mut self, l: u32) {
        let li = l as usize;
        if !self.dirty_link_flag[li] {
            self.dirty_link_flag[li] = true;
            self.dirty_links.push(l);
            self.have_dirty = true;
        }
    }

    /// Per-link bookkeeping for a removed flow. Returns whether a re-solve
    /// is needed: a flow leaving a path of clean, unsaturated links cannot
    /// change any other flow's rate (its own rate was cap-frozen below every
    /// link's fill level), so the solver is skipped; otherwise its path is
    /// marked dirty.
    fn note_removed(&mut self, f: &FlowState<W>) -> bool {
        let mut fast = true;
        for &l in &f.path_u32 {
            let li = l as usize;
            self.link_active[li] -= 1;
            self.link_load[li] -= f.rate;
            if self.link_active[li] == 0 {
                // Last flow off the link: its state is trivially clean.
                self.link_load[li] = 0.0;
                self.link_saturated[li] = false;
            }
            if self.link_saturated[li] || self.dirty_link_flag[li] {
                fast = false;
            }
        }
        if !fast {
            for &l in &f.path_u32 {
                self.mark_link_dirty(l);
            }
        }
        !fast
    }

    /// Queue the end-of-instant batch solve, once per instant. All mutations
    /// at the same `SimTime` coalesce into this single event; since rates
    /// only matter over strictly positive spans of simulated time, deferring
    /// the solve to the end of the instant is exact.
    fn schedule_solve(sim: &mut Sim<W>, w: &mut W) {
        {
            let net = w.net();
            if net.solve_scheduled {
                return;
            }
            net.solve_scheduled = true;
        }
        sim.immediately(|sim, w| {
            let now = sim.now();
            {
                let net = w.net();
                net.solve_scheduled = false;
                net.settle(now);
                net.recompute_dirty();
            }
            Self::reschedule_tick(sim, w);
        });
    }

    /// Re-solve exactly the connected components (flows joined transitively
    /// by shared links) reachable from a dirty link. Component independence
    /// makes the result bit-for-bit identical to a global re-solve.
    fn recompute_dirty(&mut self) {
        if !self.have_dirty {
            return;
        }
        // Union-find over every active flow's path, so dirty links resolve
        // to component roots.
        let mut uf = std::mem::take(&mut self.nw_uf);
        for f in self.flows.values() {
            for &l in &f.path_u32 {
                let li = l as usize;
                if !self.nw_seen[li] {
                    self.nw_seen[li] = true;
                    uf[li] = l;
                    self.nw_touched.push(l);
                }
            }
            if let Some((&first, rest)) = f.path_u32.split_first() {
                let mut root = uf_find(&mut uf, first);
                for &l in rest {
                    let r = uf_find(&mut uf, l);
                    if r != root {
                        // Deterministic union: smaller root wins.
                        let (lo, hi) = if r < root { (r, root) } else { (root, r) };
                        uf[hi as usize] = lo;
                        root = lo;
                    }
                }
            }
        }
        // Resolve dirty links to dirty component roots. A dirty link no flow
        // crosses has nothing to solve; reset its state directly.
        for k in 0..self.dirty_links.len() {
            let l = self.dirty_links[k];
            let li = l as usize;
            if self.nw_seen[li] {
                let root = uf_find(&mut uf, l);
                if !self.nw_root_dirty[root as usize] {
                    self.nw_root_dirty[root as usize] = true;
                    self.nw_dirty_roots.push(root);
                }
            } else {
                self.link_load[li] = 0.0;
                self.link_saturated[li] = false;
            }
        }
        // Collect the affected flows — flow-id order, matching what a global
        // solve would see — into the flat scratch.
        self.rc_paths.clear();
        self.rc_meta.clear();
        self.rc_ids.clear();
        for (&id, f) in &self.flows {
            let Some(&first) = f.path_u32.first() else {
                continue;
            };
            let root = uf_find(&mut uf, first);
            if self.nw_root_dirty[root as usize] {
                let start = self.rc_paths.len() as u32;
                self.rc_paths.extend_from_slice(&f.path_u32);
                self.rc_meta.push(FlatFlow {
                    start,
                    len: f.path_u32.len() as u32,
                    cap: f.cap,
                });
                self.rc_ids.push(id);
            }
        }
        self.nw_uf = uf;

        if !self.rc_meta.is_empty() {
            let paths = std::mem::take(&mut self.rc_paths);
            let meta = std::mem::take(&mut self.rc_meta);
            let mut rates = std::mem::take(&mut self.rc_rates);
            let mut solver = std::mem::take(&mut self.solver);
            solver.solve_flat(&self.effective_capacity, &paths, &meta, &mut rates);
            // Solver-touched links get exact state: zeroed load re-accrued
            // from the freshly solved rates, and fresh saturation flags.
            for &l in solver.touched_links() {
                let li = l as usize;
                self.link_load[li] = 0.0;
                self.link_saturated[li] = solver.link_saturated(l);
            }
            for (k, &id) in self.rc_ids.iter().enumerate() {
                let r = rates[k].min(RATE_CLAMP);
                let f = self.flows.get_mut(&id).expect("id collected above");
                f.rate = r;
                for &l in &f.path_u32 {
                    self.link_load[l as usize] += r;
                }
            }
            self.rc_paths = paths;
            self.rc_meta = meta;
            self.rc_rates = rates;
            self.solver = solver;
        }

        for &l in &self.dirty_links {
            self.dirty_link_flag[l as usize] = false;
        }
        self.dirty_links.clear();
        self.have_dirty = false;
        for &l in &self.nw_touched {
            self.nw_seen[l as usize] = false;
        }
        self.nw_touched.clear();
        for &r in &self.nw_dirty_roots {
            self.nw_root_dirty[r as usize] = false;
        }
        self.nw_dirty_roots.clear();
    }

    /// Earliest instant at which some flow drains (absolute), if any.
    fn next_drain(&self, now: SimTime) -> Option<SimTime> {
        self.flows
            .values()
            .filter(|f| f.rate > 0.0)
            .map(|f| {
                let secs = (f.remaining.max(0.0)) / f.rate;
                now + SimDuration::from_secs_f64(secs) + SimDuration::from_nanos(1)
            })
            .min()
    }

    /// Re-register the single completion timer at the current earliest drain
    /// time, cancelling the previous registration.
    fn reschedule_tick(sim: &mut Sim<W>, w: &mut W) {
        if let Some(id) = w.net().tick_timer.take() {
            sim.cancel_timer(id);
        }
        let t = {
            let net = w.net();
            match net.next_drain(net.last_settle) {
                Some(t) => t,
                None => return,
            }
        };
        let t = t.max(sim.now());
        let id = sim.timer_at(t, |sim, w| Self::tick(sim, w));
        w.net().tick_timer = Some(id);
    }

    fn tick(sim: &mut Sim<W>, w: &mut W) {
        let now = sim.now();
        let (drained, needs_solve) = {
            let net = w.net();
            net.tick_timer = None;
            net.settle(now);
            let mut ids = std::mem::take(&mut net.drain_ids);
            ids.clear();
            ids.extend(
                net.flows
                    .iter()
                    .filter(|(_, f)| f.remaining <= DRAIN_EPS)
                    .map(|(id, _)| *id),
            );
            let mut done: Vec<(SimDuration, Action<W>)> = Vec::with_capacity(ids.len());
            let mut needs_solve = false;
            for &id in &ids {
                let mut f = net.flows.remove(&id).expect("id from iteration");
                self_credit_residual(&mut net.total_delivered, &mut f);
                needs_solve |= net.note_removed(&f);
                if let Some(cb) = f.on_complete.take() {
                    done.push((f.delivery_delay, cb));
                }
            }
            net.drain_ids = ids;
            (done, needs_solve)
        };
        if needs_solve {
            Self::schedule_solve(sim, w);
        } else {
            Self::reschedule_tick(sim, w);
        }
        for (delay, cb) in drained {
            sim.at(now + delay, cb);
        }
    }
}

/// Credit the final sub-epsilon residue so accounting stays exact.
fn self_credit_residual<W>(total: &mut f64, f: &mut FlowState<W>) {
    if f.remaining > 0.0 {
        *total += f.remaining;
        f.remaining = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use simcore::{Bandwidth, GBYTE, MBYTE};

    struct World {
        net: Network<World>,
        done: Vec<(SimTime, &'static str)>,
    }
    impl NetWorld for World {
        fn net(&mut self) -> &mut Network<World> {
            &mut self.net
        }
    }

    /// a --10Gb/s,5ms-- m --1Gb/s,20ms-- c
    fn world() -> (Sim<World>, World, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.node("a");
        let m = b.node("m");
        let c = b.node("c");
        b.duplex_link(a, m, Bandwidth::gbit(10.0), SimDuration::from_millis(5), "am");
        b.duplex_link(m, c, Bandwidth::gbit(1.0), SimDuration::from_millis(20), "mc");
        let w = World {
            net: Network::new(b.build(), 1),
            done: Vec::new(),
        };
        (Sim::new(), w, a, m, c)
    }

    #[test]
    fn single_flow_completes_at_link_rate() {
        let (mut sim, mut w, a, _m, c) = world();
        // 125 MB over a 1 Gb/s bottleneck = 1.0 s + 25 ms delivery.
        Network::start_flow(
            &mut sim,
            &mut w,
            FlowSpec::bulk(a, c, 125 * MBYTE),
            |sim, w: &mut World| w.done.push((sim.now(), "f")),
        );
        sim.run(&mut w);
        assert_eq!(w.done.len(), 1);
        let t = w.done[0].0.as_secs_f64();
        assert!((t - 1.025).abs() < 1e-3, "completion at {t}");
        assert_eq!(w.net.total_delivered(), 125 * MBYTE);
        assert_eq!(w.net.active_flows(), 0);
    }

    #[test]
    fn two_flows_share_bottleneck_fairly() {
        let (mut sim, mut w, a, _m, c) = world();
        // Two 62.5 MB flows through the 1 Gb/s link: each gets 62.5 MB/s,
        // both finish at ~1 s.
        for name in ["x", "y"] {
            Network::start_flow(
                &mut sim,
                &mut w,
                FlowSpec::bulk(a, c, 125 * MBYTE / 2),
                move |sim, w: &mut World| w.done.push((sim.now(), name)),
            );
        }
        sim.run(&mut w);
        assert_eq!(w.done.len(), 2);
        for (t, _) in &w.done {
            assert!((t.as_secs_f64() - 1.025).abs() < 1e-3);
        }
    }

    #[test]
    fn window_cap_limits_rate() {
        let (mut sim, mut w, a, _m, c) = world();
        // RTT = 2*(5+20)ms + 60us ~= 50.06ms. Window 1 MB -> ~19.98 MB/s,
        // far below the 125 MB/s link. 20 MB should take ~1.0 s.
        Network::start_flow(
            &mut sim,
            &mut w,
            FlowSpec::bulk(a, c, 20 * MBYTE).with_window(MBYTE),
            |sim, w: &mut World| w.done.push((sim.now(), "capped")),
        );
        sim.run(&mut w);
        let t = w.done[0].0.as_secs_f64();
        assert!((1.0..1.1).contains(&t), "windowed flow completed at {t}");
    }

    #[test]
    fn second_flow_speeds_up_when_first_finishes() {
        let (mut sim, mut w, a, _m, c) = world();
        // Flow1: 62.5 MB; Flow2: 125 MB. Shared until flow1 finishes at
        // t=1s (each at 62.5 MB/s); then flow2 runs at full 125 MB/s for its
        // remaining 62.5 MB (0.5 s). Flow2 completes ~1.5 s + delay.
        Network::start_flow(
            &mut sim,
            &mut w,
            FlowSpec::bulk(a, c, 125 * MBYTE / 2),
            |sim, w: &mut World| w.done.push((sim.now(), "short")),
        );
        Network::start_flow(
            &mut sim,
            &mut w,
            FlowSpec::bulk(a, c, 125 * MBYTE),
            |sim, w: &mut World| w.done.push((sim.now(), "long")),
        );
        sim.run(&mut w);
        assert_eq!(w.done.len(), 2);
        assert_eq!(w.done[0].1, "short");
        let t_long = w.done[1].0.as_secs_f64();
        assert!((t_long - 1.525).abs() < 2e-3, "long flow at {t_long}");
    }

    #[test]
    fn cancel_flow_releases_bandwidth() {
        let (mut sim, mut w, a, _m, c) = world();
        let id = Network::start_flow(
            &mut sim,
            &mut w,
            FlowSpec::bulk(a, c, GBYTE),
            |_s, _w: &mut World| panic!("cancelled flow must not complete"),
        );
        Network::start_flow(
            &mut sim,
            &mut w,
            FlowSpec::bulk(a, c, 125 * MBYTE),
            |sim, w: &mut World| w.done.push((sim.now(), "kept")),
        );
        // Cancel the big flow at t=0 (before any events run).
        let remaining = Network::cancel_flow(&mut sim, &mut w, id).unwrap();
        assert!(remaining > 0);
        sim.run(&mut w);
        let t = w.done[0].0.as_secs_f64();
        assert!((t - 1.025).abs() < 1e-3, "kept flow at {t}");
    }

    #[test]
    fn extend_flow_prolongs_completion() {
        let (mut sim, mut w, a, _m, c) = world();
        let id = Network::start_flow(
            &mut sim,
            &mut w,
            FlowSpec::bulk(a, c, 125 * MBYTE / 2),
            |sim, w: &mut World| w.done.push((sim.now(), "ext")),
        );
        assert!(Network::extend_flow(&mut sim, &mut w, id, 125 * MBYTE / 2));
        sim.run(&mut w);
        let t = w.done[0].0.as_secs_f64();
        assert!((t - 1.025).abs() < 1e-3, "extended flow at {t}");
    }

    #[test]
    fn message_delay_includes_latency_and_overhead() {
        let (mut sim, mut w, a, _m, c) = world();
        Network::send_msg(&mut sim, &mut w, a, c, 1000, |sim, w: &mut World| {
            w.done.push((sim.now(), "msg"))
        });
        sim.run(&mut w);
        let t = w.done[0].0.as_secs_f64();
        // 25 ms latency + 30us overhead + 1000B/125MB/s (= 8 us)
        assert!((t - 0.025038).abs() < 1e-5, "msg at {t}");
    }

    #[test]
    fn rtt_is_symmetric_roundtrip() {
        let (_sim, mut w, a, _m, c) = world();
        let rtt = w.net().rtt(a, c);
        assert!((rtt.as_secs_f64() - 0.05006).abs() < 1e-5);
    }

    #[test]
    fn monitoring_produces_series() {
        let (mut sim, mut w, a, _m, c) = world();
        Network::enable_monitoring(&mut sim, &mut w, SimDuration::from_millis(100));
        w.net().register_tag(7, "reads");
        Network::start_flow(
            &mut sim,
            &mut w,
            FlowSpec::bulk(a, c, 125 * MBYTE).with_tag(7),
            |_s, _w: &mut World| {},
        );
        sim.set_horizon(SimTime::from_secs(2));
        sim.run(&mut w);
        let series = w.net.finish_monitoring(SimTime::from_secs(2));
        let reads = series.iter().find(|s| s.name == "reads").unwrap();
        // Mid-transfer samples should be ~125 MB/s.
        let mid = reads.mean_between(SimTime::from_millis(200), SimTime::from_millis(800));
        assert!(
            (mid - 125e6).abs() < 5e6,
            "mid-transfer rate {mid} not ~125 MB/s"
        );
    }

    #[test]
    fn many_small_flows_conserve_bytes() {
        let (mut sim, mut w, a, _m, c) = world();
        let n = 50u64;
        for _ in 0..n {
            Network::start_flow(
                &mut sim,
                &mut w,
                FlowSpec::bulk(a, c, MBYTE),
                |sim, w: &mut World| w.done.push((sim.now(), "s")),
            );
        }
        sim.run(&mut w);
        assert_eq!(w.done.len(), n as usize);
        assert_eq!(w.net.total_delivered(), n * MBYTE);
    }

    #[test]
    fn cancel_tagged_removes_only_matching_flows() {
        let (mut sim, mut w, a, _m, c) = world();
        for tag in [1u32, 1, 2] {
            Network::start_flow(
                &mut sim,
                &mut w,
                FlowSpec::bulk(a, c, 125 * MBYTE).with_tag(tag),
                move |sim, w: &mut World| w.done.push((sim.now(), "f")),
            );
        }
        assert_eq!(w.net.active_flows(), 3);
        let n = Network::cancel_tagged(&mut sim, &mut w, 1);
        assert_eq!(n, 2);
        assert_eq!(w.net.active_flows(), 1);
        sim.run(&mut w);
        // Only the tag-2 flow completed, and at full link rate (~1s).
        assert_eq!(w.done.len(), 1);
        let t = w.done[0].0.as_secs_f64();
        assert!((t - 1.025).abs() < 1e-3, "survivor finished at {t}");
        // Cancelling a tag with no flows is a no-op.
        assert_eq!(Network::cancel_tagged(&mut sim, &mut w, 9), 0);
    }

    #[test]
    fn link_down_stalls_flow_and_restore_resumes() {
        let (mut sim, mut w, a, _m, c) = world();
        // 125 MB over the 1 Gb/s bottleneck normally takes 1 s. Take the
        // mc link down from t=0.5 to t=1.0: the flow stalls for exactly
        // that half second and completes ~1.525 s (incl. delivery delay).
        Network::start_flow(
            &mut sim,
            &mut w,
            FlowSpec::bulk(a, c, 125 * MBYTE),
            |sim, w: &mut World| w.done.push((sim.now(), "f")),
        );
        let links = w.net().links_named("mc");
        assert_eq!(links.len(), 2, "duplex link resolves to both directions");
        let l2 = links.clone();
        sim.at(SimTime::from_millis(500), move |sim, w: &mut World| {
            for l in &links {
                Network::set_link_up(sim, w, *l, false);
            }
        });
        sim.at(SimTime::from_millis(1000), move |sim, w: &mut World| {
            for l in &l2 {
                Network::set_link_up(sim, w, *l, true);
            }
        });
        sim.run(&mut w);
        assert_eq!(w.done.len(), 1, "stalled flow must finish after restore");
        let t = w.done[0].0.as_secs_f64();
        assert!((t - 1.525).abs() < 2e-3, "flap-delayed completion at {t}");
        assert_eq!(w.net.total_delivered(), 125 * MBYTE);
    }

    #[test]
    fn degraded_link_scales_rate() {
        let (mut sim, mut w, a, _m, c) = world();
        // Degrade the bottleneck to half capacity up front: 125 MB at
        // 62.5 MB/s takes 2 s.
        let links = w.net().links_named("mc");
        for l in links {
            Network::set_link_degraded(&mut sim, &mut w, l, 0.5);
        }
        Network::start_flow(
            &mut sim,
            &mut w,
            FlowSpec::bulk(a, c, 125 * MBYTE),
            |sim, w: &mut World| w.done.push((sim.now(), "slow")),
        );
        sim.run(&mut w);
        let t = w.done[0].0.as_secs_f64();
        assert!((t - 2.025).abs() < 2e-3, "half-rate completion at {t}");
    }

    #[test]
    fn messages_are_lost_on_down_links() {
        let (mut sim, mut w, a, _m, c) = world();
        for l in w.net().links_named("mc") {
            Network::set_link_up(&mut sim, &mut w, l, false);
        }
        let delivered = Network::send_msg(&mut sim, &mut w, a, c, 1000, |_s, w: &mut World| {
            w.done.push((SimTime::ZERO, "lost"))
        });
        assert!(!delivered, "message over a down link must be dropped");
        // Unaffected segment still delivers.
        let ok = Network::send_msg(&mut sim, &mut w, a, _m, 1000, |sim, w: &mut World| {
            w.done.push((sim.now(), "ok"))
        });
        assert!(ok);
        sim.run(&mut w);
        assert_eq!(w.done.len(), 1);
        assert_eq!(w.done[0].1, "ok");
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn zero_byte_flow_rejected() {
        let (mut sim, mut w, a, _m, c) = world();
        Network::start_flow(
            &mut sim,
            &mut w,
            FlowSpec::bulk(a, c, 0),
            |_s, _w: &mut World| {},
        );
    }

    #[test]
    fn fast_path_add_matches_solver_rates() {
        let (mut sim, mut w, a, _m, c) = world();
        // A small windowed flow behind a big bulk flow: the bulk flow
        // saturates the bottleneck, so the windowed add must take the slow
        // path and both rates must match a global solve — total equals the
        // 1 Gb/s bottleneck, windowed flow gets its cap.
        Network::start_flow(
            &mut sim,
            &mut w,
            FlowSpec::bulk(a, c, 125 * MBYTE),
            |sim, w: &mut World| w.done.push((sim.now(), "bulk")),
        );
        let capped = Network::start_flow(
            &mut sim,
            &mut w,
            FlowSpec::bulk(a, c, 20 * MBYTE).with_window(MBYTE),
            |sim, w: &mut World| w.done.push((sim.now(), "win")),
        );
        // Rates settle at the end of the instant; run one step past it.
        sim.run_until(&mut w, |w| w.done.len() == 2);
        assert_eq!(w.done.len(), 2);
        // Windowed flow finishes ~1 s (cap ~20 MB/s on 20 MB), bulk flow
        // sheds ~20 MB/s while sharing then speeds back up.
        let t_win = w.done.iter().find(|(_, n)| *n == "win").unwrap().0;
        assert!((t_win.as_secs_f64() - 1.0).abs() < 0.1);
        assert!(w.net.flow_rate(capped).is_none());
        assert_eq!(w.net.total_delivered(), 145 * MBYTE);
    }

    #[test]
    fn pending_stays_bounded_across_rate_changes() {
        // Each mutation re-registers the one completion timer instead of
        // piling stale epoch-guarded events on the heap.
        let (mut sim, mut w, a, _m, c) = world();
        for _ in 0..32 {
            Network::start_flow(
                &mut sim,
                &mut w,
                FlowSpec::bulk(a, c, 10 * MBYTE),
                |sim, w: &mut World| w.done.push((sim.now(), "f")),
            );
        }
        // 32 flows started at the same instant: at most one tick timer, one
        // batched solve event, and nothing else.
        assert!(
            sim.pending() <= 2,
            "expected one timer + one solve event, found {} pending",
            sim.pending()
        );
        sim.run(&mut w);
        assert_eq!(w.done.len(), 32);
        assert_eq!(sim.pending(), 0);
    }
}
