//! Max-min fair bandwidth allocation with per-flow rate caps
//! (water-filling / progressive-filling algorithm).
//!
//! This is the analytical heart of every throughput number in the paper:
//! long-lived bulk TCP flows sharing wide-area links converge to
//! approximately max-min fair rates, and a flow whose TCP window is smaller
//! than the bandwidth-delay product is additionally capped at
//! `window / RTT`. The solver raises all flow rates uniformly; the first
//! constraint to bind is either a link saturating (freezing all flows
//! crossing it) or a flow hitting its individual cap (freezing that flow).

/// One flow as seen by the solver.
#[derive(Clone, Debug)]
pub struct SolverFlow<'a> {
    /// Directed link indices this flow traverses.
    pub path: &'a [u32],
    /// Individual rate cap in bytes/sec (`f64::INFINITY` when unlimited);
    /// typically `window / RTT`.
    pub cap: f64,
}

/// Compute max-min fair rates.
///
/// * `link_capacity[l]` — capacity of link `l` in bytes/sec.
/// * returns one rate per flow, in bytes/sec.
///
/// Runs in `O(iterations × Σ|path|)`; each iteration freezes at least one
/// link or flow, so iterations ≤ links + flows.
pub fn allocate(link_capacity: &[f64], flows: &[SolverFlow<'_>]) -> Vec<f64> {
    let nf = flows.len();
    let nl = link_capacity.len();
    if nf == 0 {
        return Vec::new();
    }

    let mut rate = vec![0.0f64; nf];
    let mut frozen = vec![false; nf];
    // Flows with an empty path (loopback) are only cap-limited.
    let mut active_on_link = vec![0usize; nl];
    let mut residual: Vec<f64> = link_capacity.to_vec();
    let mut link_saturated = vec![false; nl];

    for f in flows {
        for &l in f.path {
            active_on_link[l as usize] += 1;
        }
    }

    let mut unfrozen = nf;
    // Uniform fill level reached so far by all still-unfrozen flows.
    let mut level = 0.0f64;

    while unfrozen > 0 {
        // Smallest additional increment at which a constraint binds.
        let mut delta = f64::INFINITY;
        for l in 0..nl {
            if !link_saturated[l] && active_on_link[l] > 0 {
                delta = delta.min(residual[l] / active_on_link[l] as f64);
            }
        }
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] {
                delta = delta.min(f.cap - level);
            }
        }
        if !delta.is_finite() {
            // No binding constraint: remaining flows are unconstrained
            // (empty paths, infinite caps). Give them "infinite" rate.
            for i in 0..nf {
                if !frozen[i] {
                    rate[i] = f64::INFINITY;
                }
            }
            break;
        }
        let delta = delta.max(0.0);

        // Raise every unfrozen flow by delta.
        level += delta;
        for i in 0..nf {
            if !frozen[i] {
                rate[i] = level;
            }
        }
        for l in 0..nl {
            if active_on_link[l] > 0 && !link_saturated[l] {
                residual[l] -= delta * active_on_link[l] as f64;
            }
        }

        // Freeze flows that hit their cap.
        let mut newly_frozen = Vec::new();
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] && level >= f.cap - 1e-9 {
                newly_frozen.push(i);
            }
        }
        // Freeze links that saturated, and all unfrozen flows crossing them.
        for l in 0..nl {
            if !link_saturated[l] && active_on_link[l] > 0 && residual[l] <= 1e-6 {
                link_saturated[l] = true;
                for (i, f) in flows.iter().enumerate() {
                    if !frozen[i] && f.path.contains(&(l as u32)) && !newly_frozen.contains(&i) {
                        newly_frozen.push(i);
                    }
                }
            }
        }

        if newly_frozen.is_empty() {
            // Numerical corner: delta was ~0 but nothing crossed a
            // threshold. Freeze the flow closest to its cap to guarantee
            // progress.
            let i = (0..nf)
                .filter(|&i| !frozen[i])
                .min_by(|&a, &b| {
                    (flows[a].cap - level)
                        .partial_cmp(&(flows[b].cap - level))
                        .expect("caps are not NaN")
                })
                .expect("unfrozen flow exists");
            newly_frozen.push(i);
        }

        for i in newly_frozen {
            frozen[i] = true;
            unfrozen -= 1;
            for &l in flows[i].path {
                active_on_link[l as usize] -= 1;
            }
        }
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn single_flow_takes_link() {
        let rates = allocate(
            &[100.0],
            &[SolverFlow {
                path: &[0],
                cap: f64::INFINITY,
            }],
        );
        assert!(close(rates[0], 100.0));
    }

    #[test]
    fn equal_split_on_shared_link() {
        let f = SolverFlow {
            path: &[0],
            cap: f64::INFINITY,
        };
        let rates = allocate(&[90.0], &[f.clone(), f.clone(), f]);
        for r in rates {
            assert!(close(r, 30.0));
        }
    }

    #[test]
    fn window_cap_binds_before_link() {
        // One capped flow and one open flow share a 100-unit link: the
        // capped flow gets its cap, the open flow gets the rest.
        let rates = allocate(
            &[100.0],
            &[
                SolverFlow {
                    path: &[0],
                    cap: 10.0,
                },
                SolverFlow {
                    path: &[0],
                    cap: f64::INFINITY,
                },
            ],
        );
        assert!(close(rates[0], 10.0));
        assert!(close(rates[1], 90.0));
    }

    #[test]
    fn classic_max_min_three_flows_two_links() {
        // Link0 cap 10 shared by f0 and f2; link1 cap 100 shared by f1, f2.
        // f0 = f2 = 5 (bottleneck link0), f1 = 95.
        let rates = allocate(
            &[10.0, 100.0],
            &[
                SolverFlow {
                    path: &[0],
                    cap: f64::INFINITY,
                },
                SolverFlow {
                    path: &[1],
                    cap: f64::INFINITY,
                },
                SolverFlow {
                    path: &[0, 1],
                    cap: f64::INFINITY,
                },
            ],
        );
        assert!(close(rates[0], 5.0));
        assert!(close(rates[1], 95.0));
        assert!(close(rates[2], 5.0));
    }

    #[test]
    fn empty_path_uncapped_flow_is_infinite() {
        let rates = allocate(
            &[10.0],
            &[SolverFlow {
                path: &[],
                cap: f64::INFINITY,
            }],
        );
        assert!(rates[0].is_infinite());
    }

    #[test]
    fn empty_path_capped_flow_gets_cap() {
        let rates = allocate(
            &[],
            &[SolverFlow {
                path: &[],
                cap: 42.0,
            }],
        );
        assert!(close(rates[0], 42.0));
    }

    #[test]
    fn no_flows() {
        assert!(allocate(&[10.0], &[]).is_empty());
    }

    #[test]
    fn conservation_and_capacity_respected() {
        // Randomized-ish topology checked for feasibility invariants.
        let caps = [50.0, 80.0, 20.0, 100.0];
        let paths: Vec<Vec<u32>> = vec![
            vec![0, 1],
            vec![1, 2],
            vec![0, 2, 3],
            vec![3],
            vec![0],
            vec![2],
        ];
        let flows: Vec<SolverFlow> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| SolverFlow {
                path: p,
                cap: if i % 2 == 0 { 15.0 } else { f64::INFINITY },
            })
            .collect();
        let rates = allocate(&caps, &flows);
        // No link over capacity.
        for (l, &c) in caps.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.path.contains(&(l as u32)))
                .map(|(_, r)| r)
                .sum();
            assert!(used <= c + 1e-6, "link {l} over capacity: {used} > {c}");
        }
        // No flow over its cap.
        for (f, r) in flows.iter().zip(&rates) {
            assert!(*r <= f.cap + 1e-6);
        }
        // Every flow got something positive.
        for r in &rates {
            assert!(*r > 0.0);
        }
    }

    #[test]
    fn bottleneck_flow_does_not_starve_parallel_flows() {
        // The paper's SC'04 setup: three parallel 10 Gb/s links. Flows pinned
        // to distinct links must each saturate their own link.
        let caps = [10.0, 10.0, 10.0];
        let flows = [
            SolverFlow {
                path: &[0u32][..],
                cap: f64::INFINITY,
            },
            SolverFlow {
                path: &[1u32][..],
                cap: f64::INFINITY,
            },
            SolverFlow {
                path: &[2u32][..],
                cap: f64::INFINITY,
            },
        ];
        let rates = allocate(&caps, &flows);
        let agg: f64 = rates.iter().sum();
        assert!(close(agg, 30.0));
    }
}
