//! Max-min fair bandwidth allocation with per-flow rate caps
//! (water-filling / progressive-filling algorithm).
//!
//! This is the analytical heart of every throughput number in the paper:
//! long-lived bulk TCP flows sharing wide-area links converge to
//! approximately max-min fair rates, and a flow whose TCP window is smaller
//! than the bandwidth-delay product is additionally capped at
//! `window / RTT`. The solver raises all flow rates uniformly; the first
//! constraint to bind is either a link saturating (freezing all flows
//! crossing it) or a flow hitting its individual cap (freezing that flow).
//!
//! ## Incremental solving
//!
//! [`Solver`] is the reusable engine: it keeps every scratch buffer between
//! calls (no allocation on the hot path once warmed up) and decomposes the
//! flow set into **connected components** — flows joined transitively by
//! shared links — solving each component with its own fill level. Two
//! properties follow, and the network layer leans on both:
//!
//! 1. Components are arithmetically independent: a component's rates are a
//!    pure function of its own flows (in order) and its own links. Re-solving
//!    one component in isolation is therefore **bit-for-bit identical** to
//!    solving the whole system and reading off that component's rates.
//! 2. Constraint freezing uses exact comparisons against the per-round
//!    level (no epsilon tolerances), and a cap-frozen flow's rate is its cap
//!    *exactly* — which lets callers prove small mutations (an uncapped-link
//!    add, an unsaturated-path remove) leave every other rate untouched.

/// One flow as seen by the solver.
#[derive(Clone, Debug)]
pub struct SolverFlow<'a> {
    /// Directed link indices this flow traverses.
    pub path: &'a [u32],
    /// Individual rate cap in bytes/sec (`f64::INFINITY` when unlimited);
    /// typically `window / RTT`.
    pub cap: f64,
}

/// One flow in the flat (pre-packed) solver input: its path is
/// `path_buf[start..start + len]` in the caller-held path buffer. Callers on
/// the hot path keep both buffers alive across solves instead of
/// materializing `SolverFlow` slices.
#[derive(Clone, Copy, Debug)]
pub struct FlatFlow {
    /// Offset of the first link index in the shared path buffer.
    pub start: u32,
    /// Number of links in the path.
    pub len: u32,
    /// Individual rate cap in bytes/sec (`f64::INFINITY` when unlimited).
    pub cap: f64,
}

/// Reusable max-min solver: scratch buffers persist across calls so the
/// steady-state solve performs no heap allocation.
#[derive(Default)]
pub struct Solver {
    // Per-link scratch, sized to the largest link id seen (+1). Reset lazily
    // through `touched_links` so solve cost scales with the flows' footprint,
    // not the topology size.
    uf_parent: Vec<u32>,
    active: Vec<u32>,
    frozen_sum: Vec<f64>,
    saturated: Vec<bool>,
    link_seen: Vec<bool>,
    touched_links: Vec<u32>,
    // Per-flow scratch.
    frozen: Vec<bool>,
    comp: Vec<u32>,
    order: Vec<u32>,
    round_frozen: Vec<u32>,
    // Packing scratch for the `SolverFlow` entry point.
    flat_paths: Vec<u32>,
    flat_meta: Vec<FlatFlow>,
}

impl Solver {
    /// Fresh solver with empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Links marked saturated (they froze at least one flow) by the last
    /// [`Solver::solve`] call, for link ids < the scratch size. Valid until
    /// the next call.
    pub fn link_saturated(&self, link: u32) -> bool {
        self.saturated.get(link as usize).copied().unwrap_or(false)
    }

    fn ensure_links(&mut self, nl: usize) {
        if self.uf_parent.len() < nl {
            self.uf_parent.resize(nl, 0);
            self.active.resize(nl, 0);
            self.frozen_sum.resize(nl, 0.0);
            self.saturated.resize(nl, false);
            self.link_seen.resize(nl, false);
        }
    }

    fn uf_find(&mut self, mut l: u32) -> u32 {
        while self.uf_parent[l as usize] != l {
            let p = self.uf_parent[l as usize];
            self.uf_parent[l as usize] = self.uf_parent[p as usize];
            l = self.uf_parent[l as usize];
        }
        l
    }

    /// Compute max-min fair rates for `flows` over `link_capacity`, writing
    /// one rate per flow into `out` (cleared first). Flows with an empty path
    /// get their cap (or `INFINITY` when uncapped). All scratch is reused;
    /// after warmup the call allocates nothing.
    pub fn solve(&mut self, link_capacity: &[f64], flows: &[SolverFlow<'_>], out: &mut Vec<f64>) {
        let mut paths = std::mem::take(&mut self.flat_paths);
        let mut meta = std::mem::take(&mut self.flat_meta);
        paths.clear();
        meta.clear();
        for f in flows {
            let start = paths.len() as u32;
            paths.extend_from_slice(f.path);
            meta.push(FlatFlow {
                start,
                len: f.path.len() as u32,
                cap: f.cap,
            });
        }
        self.solve_flat(link_capacity, &paths, &meta, out);
        self.flat_paths = paths;
        self.flat_meta = meta;
    }

    /// [`Solver::solve`] over pre-packed flat buffers: flow `i`'s path is
    /// `path_buf[meta[i].start..][..meta[i].len]`. This is the actual engine;
    /// both entry points produce bit-identical rates for the same flows.
    pub fn solve_flat(
        &mut self,
        link_capacity: &[f64],
        path_buf: &[u32],
        meta: &[FlatFlow],
        out: &mut Vec<f64>,
    ) {
        out.clear();
        let nf = meta.len();
        if nf == 0 {
            return;
        }
        self.ensure_links(link_capacity.len());
        out.resize(nf, 0.0);

        // Reset per-link scratch from the previous call.
        for &l in &self.touched_links {
            self.active[l as usize] = 0;
            self.frozen_sum[l as usize] = 0.0;
            self.saturated[l as usize] = false;
            self.link_seen[l as usize] = false;
        }
        self.touched_links.clear();

        let path = |f: &FlatFlow| &path_buf[f.start as usize..(f.start + f.len) as usize];

        // Pass 1: register links, seed union-find, count active flows.
        for f in meta {
            for &l in path(f) {
                let li = l as usize;
                if !self.link_seen[li] {
                    self.link_seen[li] = true;
                    self.uf_parent[li] = l;
                    self.touched_links.push(l);
                }
                self.active[li] += 1;
            }
        }
        // Pass 2: union every flow's links into one component.
        for f in meta {
            if let Some((&first, rest)) = path(f).split_first() {
                let mut root = self.uf_find(first);
                for &l in rest {
                    let r = self.uf_find(l);
                    if r != root {
                        // Deterministic union: smaller root wins.
                        let (lo, hi) = if r < root { (r, root) } else { (root, r) };
                        self.uf_parent[hi as usize] = lo;
                        root = lo;
                    }
                }
            }
        }

        // Pass 3: assign flows to components; empty-path flows solve
        // trivially to their cap.
        self.comp.clear();
        self.comp.resize(nf, u32::MAX);
        for (i, f) in meta.iter().enumerate() {
            match path(f).first() {
                Some(&l) => self.comp[i] = self.uf_find(l),
                None => out[i] = if f.cap.is_finite() { f.cap } else { f64::INFINITY },
            }
        }

        // Group flow indices by component root, preserving relative order
        // within each component (stable sort by root).
        let comp = &self.comp;
        self.order.clear();
        self.order
            .extend((0..nf as u32).filter(|&i| comp[i as usize] != u32::MAX));
        self.order.sort_by_key(|&i| comp[i as usize]);

        // Pass 4: water-fill each component independently.
        let mut start = 0;
        while start < self.order.len() {
            let root = self.comp[self.order[start] as usize];
            let mut end = start + 1;
            while end < self.order.len() && self.comp[self.order[end] as usize] == root {
                end += 1;
            }
            self.fill_component(link_capacity, path_buf, meta, start..end, out);
            start = end;
        }
    }

    /// Progressive-fill one component: `range` indexes into `self.order`.
    fn fill_component(
        &mut self,
        link_capacity: &[f64],
        path_buf: &[u32],
        meta: &[FlatFlow],
        range: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        let path = |f: &FlatFlow| &path_buf[f.start as usize..(f.start + f.len) as usize];
        self.frozen.resize(meta.len().max(self.frozen.len()), false);
        for &i in &self.order[range.clone()] {
            self.frozen[i as usize] = false;
        }
        let mut unfrozen = range.len();

        while unfrozen > 0 {
            // The next binding level is the smallest constraint candidate:
            // links offer (capacity - frozen share) / active flows, flows
            // offer their own cap. Exact comparisons throughout.
            let mut best = f64::INFINITY;
            for &i in &self.order[range.clone()] {
                let fi = i as usize;
                if self.frozen[fi] {
                    continue;
                }
                if meta[fi].cap < best {
                    best = meta[fi].cap;
                }
                for &l in path(&meta[fi]) {
                    let li = l as usize;
                    if !self.saturated[li] && self.active[li] > 0 {
                        let cand = (link_capacity[li] - self.frozen_sum[li])
                            / self.active[li] as f64;
                        if cand < best {
                            best = cand;
                        }
                    }
                }
            }
            if !best.is_finite() {
                // No finite constraint: the rest are unconstrained.
                for &i in &self.order[range.clone()] {
                    if !self.frozen[i as usize] {
                        out[i as usize] = f64::INFINITY;
                        self.frozen[i as usize] = true;
                    }
                }
                break;
            }
            let best = best.max(0.0);

            // Freeze, in deterministic flow order: first every flow whose own
            // cap binds at this level (rate = cap, exactly), then every flow
            // crossing a link that saturates at this level (rate = level).
            // The argmin constraint always freezes at least one flow, so each
            // round makes progress.
            self.round_frozen.clear();
            for &i in &self.order[range.clone()] {
                let fi = i as usize;
                if !self.frozen[fi] && meta[fi].cap <= best {
                    out[fi] = meta[fi].cap;
                    self.round_frozen.push(i);
                }
            }
            for &i in &self.order[range.clone()] {
                let fi = i as usize;
                if self.frozen[fi] || meta[fi].cap <= best {
                    continue;
                }
                // The saturation test repeats the candidate expression
                // verbatim so it agrees with `best` bit-for-bit (a rearranged
                // comparison could disagree after rounding and stall the
                // round).
                let on_saturating = path(&meta[fi]).iter().any(|&l| {
                    let li = l as usize;
                    !self.saturated[li]
                        && self.active[li] > 0
                        && (link_capacity[li] - self.frozen_sum[li]) / self.active[li] as f64
                            <= best
                });
                if on_saturating {
                    out[fi] = best;
                    self.round_frozen.push(i);
                }
            }
            // Mark saturating links before applying the freezes (the test
            // above uses pre-freeze active counts). Only this component's
            // links are eligible — walking the component's flow paths keeps
            // the marking from leaking into other components.
            for &i in &self.order[range.clone()] {
                for &l in path(&meta[i as usize]) {
                    let li = l as usize;
                    if !self.saturated[li]
                        && self.active[li] > 0
                        && (link_capacity[li] - self.frozen_sum[li]) / self.active[li] as f64
                            <= best
                    {
                        self.saturated[li] = true;
                    }
                }
            }
            debug_assert!(!self.round_frozen.is_empty(), "water-fill round stalled");
            for k in 0..self.round_frozen.len() {
                let i = self.round_frozen[k];
                let fi = i as usize;
                self.frozen[fi] = true;
                unfrozen -= 1;
                for &l in path(&meta[fi]) {
                    let li = l as usize;
                    self.active[li] -= 1;
                    self.frozen_sum[li] += out[fi];
                }
            }
        }
    }

    /// Links registered (crossed by some flow) in the last solve. Paired
    /// with [`Solver::link_saturated`] this lets incremental callers merge
    /// fresh saturation flags into their own persistent per-link state.
    pub fn touched_links(&self) -> &[u32] {
        &self.touched_links
    }
}

/// Compute max-min fair rates.
///
/// * `link_capacity[l]` — capacity of link `l` in bytes/sec.
/// * returns one rate per flow, in bytes/sec.
///
/// Thin wrapper over [`Solver`] for one-shot callers; hot paths should hold
/// a `Solver` and call [`Solver::solve`] to reuse scratch buffers.
pub fn allocate(link_capacity: &[f64], flows: &[SolverFlow<'_>]) -> Vec<f64> {
    let mut solver = Solver::new();
    let mut out = Vec::new();
    solver.solve(link_capacity, flows, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn single_flow_takes_link() {
        let rates = allocate(
            &[100.0],
            &[SolverFlow {
                path: &[0],
                cap: f64::INFINITY,
            }],
        );
        assert!(close(rates[0], 100.0));
    }

    #[test]
    fn equal_split_on_shared_link() {
        let f = SolverFlow {
            path: &[0],
            cap: f64::INFINITY,
        };
        let rates = allocate(&[90.0], &[f.clone(), f.clone(), f]);
        for r in rates {
            assert!(close(r, 30.0));
        }
    }

    #[test]
    fn window_cap_binds_before_link() {
        // One capped flow and one open flow share a 100-unit link: the
        // capped flow gets its cap, the open flow gets the rest.
        let rates = allocate(
            &[100.0],
            &[
                SolverFlow {
                    path: &[0],
                    cap: 10.0,
                },
                SolverFlow {
                    path: &[0],
                    cap: f64::INFINITY,
                },
            ],
        );
        assert!(close(rates[0], 10.0));
        assert!(close(rates[1], 90.0));
    }

    #[test]
    fn classic_max_min_three_flows_two_links() {
        // Link0 cap 10 shared by f0 and f2; link1 cap 100 shared by f1, f2.
        // f0 = f2 = 5 (bottleneck link0), f1 = 95.
        let rates = allocate(
            &[10.0, 100.0],
            &[
                SolverFlow {
                    path: &[0],
                    cap: f64::INFINITY,
                },
                SolverFlow {
                    path: &[1],
                    cap: f64::INFINITY,
                },
                SolverFlow {
                    path: &[0, 1],
                    cap: f64::INFINITY,
                },
            ],
        );
        assert!(close(rates[0], 5.0));
        assert!(close(rates[1], 95.0));
        assert!(close(rates[2], 5.0));
    }

    #[test]
    fn empty_path_uncapped_flow_is_infinite() {
        let rates = allocate(
            &[10.0],
            &[SolverFlow {
                path: &[],
                cap: f64::INFINITY,
            }],
        );
        assert!(rates[0].is_infinite());
    }

    #[test]
    fn empty_path_capped_flow_gets_cap() {
        let rates = allocate(
            &[],
            &[SolverFlow {
                path: &[],
                cap: 42.0,
            }],
        );
        assert!(close(rates[0], 42.0));
    }

    #[test]
    fn no_flows() {
        assert!(allocate(&[10.0], &[]).is_empty());
    }

    #[test]
    fn conservation_and_capacity_respected() {
        // Randomized-ish topology checked for feasibility invariants.
        let caps = [50.0, 80.0, 20.0, 100.0];
        let paths: Vec<Vec<u32>> = vec![
            vec![0, 1],
            vec![1, 2],
            vec![0, 2, 3],
            vec![3],
            vec![0],
            vec![2],
        ];
        let flows: Vec<SolverFlow> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| SolverFlow {
                path: p,
                cap: if i % 2 == 0 { 15.0 } else { f64::INFINITY },
            })
            .collect();
        let rates = allocate(&caps, &flows);
        // No link over capacity.
        for (l, &c) in caps.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.path.contains(&(l as u32)))
                .map(|(_, r)| r)
                .sum();
            assert!(used <= c + 1e-6, "link {l} over capacity: {used} > {c}");
        }
        // No flow over its cap.
        for (f, r) in flows.iter().zip(&rates) {
            assert!(*r <= f.cap + 1e-6);
        }
        // Every flow got something positive.
        for r in &rates {
            assert!(*r > 0.0);
        }
    }

    #[test]
    fn bottleneck_flow_does_not_starve_parallel_flows() {
        // The paper's SC'04 setup: three parallel 10 Gb/s links. Flows pinned
        // to distinct links must each saturate their own link.
        let caps = [10.0, 10.0, 10.0];
        let flows = [
            SolverFlow {
                path: &[0u32][..],
                cap: f64::INFINITY,
            },
            SolverFlow {
                path: &[1u32][..],
                cap: f64::INFINITY,
            },
            SolverFlow {
                path: &[2u32][..],
                cap: f64::INFINITY,
            },
        ];
        let rates = allocate(&caps, &flows);
        let agg: f64 = rates.iter().sum();
        assert!(close(agg, 30.0));
    }

    #[test]
    fn cap_frozen_rate_is_exact() {
        // The network layer's fast paths rely on cap-frozen flows getting
        // their cap bit-for-bit, not cap ± epsilon.
        let cap = 123.456_789_012_345;
        let rates = allocate(
            &[1_000.0],
            &[
                SolverFlow {
                    path: &[0],
                    cap,
                },
                SolverFlow {
                    path: &[0],
                    cap: f64::INFINITY,
                },
            ],
        );
        assert_eq!(rates[0], cap);
        assert!(close(rates[1], 1_000.0 - cap));
    }

    #[test]
    fn down_link_zeroes_crossing_flows_only() {
        // A zero-capacity (down) link stalls its flows at exactly 0 without
        // affecting a disjoint component.
        let rates = allocate(
            &[0.0, 50.0],
            &[
                SolverFlow {
                    path: &[0],
                    cap: f64::INFINITY,
                },
                SolverFlow {
                    path: &[1],
                    cap: f64::INFINITY,
                },
            ],
        );
        assert_eq!(rates[0], 0.0);
        assert!(close(rates[1], 50.0));
    }

    #[test]
    fn components_solve_independently() {
        // Two disjoint components in one call must match two separate calls
        // bit-for-bit: the incremental network layer depends on this.
        let caps = [10.0, 100.0, 7.0, 33.0];
        let a = vec![vec![0u32], vec![0, 1], vec![1]];
        let b = vec![vec![2u32, 3], vec![3]];
        let mk = |paths: &[Vec<u32>], cap0: f64| -> Vec<f64> {
            let flows: Vec<SolverFlow> = paths
                .iter()
                .enumerate()
                .map(|(i, p)| SolverFlow {
                    path: p,
                    cap: if i == 0 { cap0 } else { f64::INFINITY },
                })
                .collect();
            allocate(&caps, &flows)
        };
        let joint = {
            let paths: Vec<Vec<u32>> = a.iter().chain(b.iter()).cloned().collect();
            let flows: Vec<SolverFlow> = paths
                .iter()
                .enumerate()
                .map(|(i, p)| SolverFlow {
                    path: p,
                    cap: if i == 0 || i == 3 { 4.25 } else { f64::INFINITY },
                })
                .collect();
            allocate(&caps, &flows)
        };
        let solo_a = mk(&a, 4.25);
        let solo_b = mk(&b, 4.25);
        assert_eq!(&joint[..3], &solo_a[..]);
        assert_eq!(&joint[3..], &solo_b[..]);
    }

    #[test]
    fn solver_reuse_matches_fresh() {
        // A warmed-up solver (dirty scratch from an unrelated solve) must
        // produce identical bits to a fresh one.
        let caps = [50.0, 80.0, 20.0, 100.0];
        let paths: Vec<Vec<u32>> =
            vec![vec![0, 1], vec![1, 2], vec![0, 2, 3], vec![3], vec![0]];
        let flows: Vec<SolverFlow> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| SolverFlow {
                path: p,
                cap: if i % 2 == 0 { 15.0 } else { f64::INFINITY },
            })
            .collect();
        let fresh = allocate(&caps, &flows);
        let mut solver = Solver::new();
        let mut out = Vec::new();
        // Pollute scratch with a different problem first.
        solver.solve(&[5.0, 5.0, 5.0, 5.0], &flows[..2], &mut out);
        solver.solve(&caps, &flows, &mut out);
        assert_eq!(fresh, out);
    }
}
