//! Network topology: nodes, directed capacity links, and latency-based
//! shortest-path routing.
//!
//! Links are **directed**: a full-duplex physical link (every link in the
//! paper — GbE, 10 GbE, FC) is two directed links with independent capacity.
//! This also lets storage components expose direction-dependent capacity
//! (e.g. a RAID set whose write path is slower than its read path).

use simcore::{Bandwidth, SimDuration};
use std::collections::{BinaryHeap, HashMap};

/// Identifies a node (host, switch, router, gateway, or pseudo-node such as
/// an aggregated server farm).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Identifies one *directed* link.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub u32);

/// A named node.
#[derive(Clone, Debug)]
pub struct Node {
    /// Human-readable name ("SDSC", "show-floor-sw", ...).
    pub name: String,
}

/// One directed capacity edge.
#[derive(Clone, Debug)]
pub struct Link {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Goodput capacity in bytes/sec (protocol efficiency already applied by
    /// the builder when requested).
    pub capacity: f64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Display name.
    pub name: String,
    /// Optional multiplicative capacity jitter re-drawn at each monitor tick
    /// (models the 7–9 Gb/s per-link wander visible in the paper's Fig. 8).
    pub jitter_frac: f64,
}

/// An immutable routed topology. Build with [`TopologyBuilder`].
#[derive(Clone, Debug, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// adjacency: per-node outgoing (neighbor, link)
    adj: Vec<Vec<(NodeId, LinkId)>>,
}

impl Topology {
    /// Node metadata.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Link metadata.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Find a node by name (names are unique; enforced by the builder).
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// Find the directed link from `a` to `b`, if adjacent.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.adj[a.0 as usize]
            .iter()
            .find(|(n, _)| *n == b)
            .map(|(_, l)| *l)
    }

    /// Shortest path from `src` to `dst` by propagation delay (Dijkstra),
    /// returned as the sequence of directed links. `None` if unreachable.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<LinkId>> {
        if src == dst {
            return Some(Vec::new());
        }
        let n = self.nodes.len();
        let mut dist = vec![u64::MAX; n];
        let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[src.0 as usize] = 0;
        heap.push(std::cmp::Reverse((0u64, src.0)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            if u == dst.0 {
                break;
            }
            for &(v, l) in &self.adj[u as usize] {
                // +1ns per hop so equal-latency routes prefer fewer hops.
                let nd = d
                    .saturating_add(self.links[l.0 as usize].delay.as_nanos())
                    .saturating_add(1);
                if nd < dist[v.0 as usize] {
                    dist[v.0 as usize] = nd;
                    prev[v.0 as usize] = Some((NodeId(u), l));
                    heap.push(std::cmp::Reverse((nd, v.0)));
                }
            }
        }
        if dist[dst.0 as usize] == u64::MAX {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = dst;
        while cur != src {
            let (p, l) = prev[cur.0 as usize].expect("reached node must have predecessor");
            path.push(l);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// One-way propagation delay along a path.
    pub fn path_delay(&self, path: &[LinkId]) -> SimDuration {
        path.iter()
            .fold(SimDuration::ZERO, |d, l| d + self.links[l.0 as usize].delay)
    }

    /// Minimum capacity along a path (bytes/sec); `f64::INFINITY` for empty paths.
    pub fn path_capacity(&self, path: &[LinkId]) -> f64 {
        path.iter()
            .map(|l| self.links[l.0 as usize].capacity)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Incrementally constructs a [`Topology`].
#[derive(Default)]
pub struct TopologyBuilder {
    topo: Topology,
    names: HashMap<String, NodeId>,
}

impl TopologyBuilder {
    /// Fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a named node. Panics on duplicate names — scenario configs are
    /// static and a duplicate is always a bug.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        assert!(
            !self.names.contains_key(&name),
            "duplicate node name: {name}"
        );
        let id = NodeId(self.topo.nodes.len() as u32);
        self.names.insert(name.clone(), id);
        self.topo.nodes.push(Node { name });
        self.topo.adj.push(Vec::new());
        id
    }

    /// Add one directed link.
    pub fn directed_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        capacity: Bandwidth,
        delay: SimDuration,
        name: impl Into<String>,
    ) -> LinkId {
        assert!(
            capacity.bytes_per_sec() > 0.0,
            "link capacity must be positive"
        );
        let id = LinkId(self.topo.links.len() as u32);
        self.topo.links.push(Link {
            from,
            to,
            capacity: capacity.bytes_per_sec(),
            delay,
            name: name.into(),
            jitter_frac: 0.0,
        });
        self.topo.adj[from.0 as usize].push((to, id));
        id
    }

    /// Add a full-duplex link (two directed links of equal capacity).
    pub fn duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: Bandwidth,
        delay: SimDuration,
        name: impl Into<String>,
    ) -> (LinkId, LinkId) {
        let name = name.into();
        let f = self.directed_link(a, b, capacity, delay, format!("{name}>"));
        let r = self.directed_link(b, a, capacity, delay, format!("{name}<"));
        (f, r)
    }

    /// Set the capacity jitter fraction on a link (both for a duplex pair if
    /// called on each).
    pub fn set_jitter(&mut self, link: LinkId, frac: f64) {
        assert!((0.0..1.0).contains(&frac), "jitter must be in [0,1)");
        self.topo.links[link.0 as usize].jitter_frac = frac;
    }

    /// Finish building.
    pub fn build(self) -> Topology {
        self.topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Bandwidth;

    fn line3() -> (Topology, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.node("a");
        let m = b.node("m");
        let c = b.node("c");
        b.duplex_link(a, m, Bandwidth::gbit(10.0), SimDuration::from_millis(5), "am");
        b.duplex_link(m, c, Bandwidth::gbit(1.0), SimDuration::from_millis(20), "mc");
        (b.build(), a, m, c)
    }

    #[test]
    fn route_along_line() {
        let (t, a, _m, c) = line3();
        let p = t.route(a, c).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(t.path_delay(&p), SimDuration::from_millis(25));
        assert!((t.path_capacity(&p) - Bandwidth::gbit(1.0).bytes_per_sec()).abs() < 1.0);
    }

    #[test]
    fn route_to_self_is_empty() {
        let (t, a, ..) = line3();
        assert_eq!(t.route(a, a).unwrap().len(), 0);
        assert_eq!(t.path_capacity(&[]), f64::INFINITY);
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = TopologyBuilder::new();
        let a = b.node("a");
        let c = b.node("c");
        // one-way only: a -> c
        b.directed_link(a, c, Bandwidth::gbit(1.0), SimDuration::ZERO, "ac");
        let t = b.build();
        assert!(t.route(a, c).is_some());
        assert!(t.route(c, a).is_none());
    }

    #[test]
    fn dijkstra_prefers_lower_latency() {
        let mut b = TopologyBuilder::new();
        let a = b.node("a");
        let x = b.node("x");
        let y = b.node("y");
        let z = b.node("z");
        // slow direct path a->z, fast two-hop a->x->z
        b.directed_link(a, z, Bandwidth::gbit(1.0), SimDuration::from_millis(100), "slow");
        b.directed_link(a, x, Bandwidth::gbit(1.0), SimDuration::from_millis(10), "ax");
        b.directed_link(x, z, Bandwidth::gbit(1.0), SimDuration::from_millis(10), "xz");
        // decoy
        b.directed_link(a, y, Bandwidth::gbit(1.0), SimDuration::from_millis(1), "ay");
        let t = b.build();
        let p = t.route(a, z).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(t.path_delay(&p), SimDuration::from_millis(20));
    }

    #[test]
    fn find_node_by_name() {
        let (t, a, ..) = line3();
        assert_eq!(t.find_node("a"), Some(a));
        assert_eq!(t.find_node("nope"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_names_rejected() {
        let mut b = TopologyBuilder::new();
        b.node("a");
        b.node("a");
    }

    #[test]
    fn link_between_adjacent() {
        let (t, a, m, c) = line3();
        assert!(t.link_between(a, m).is_some());
        assert!(t.link_between(a, c).is_none());
    }
}
