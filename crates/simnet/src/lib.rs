//! # simnet — flow-level wide-area network simulator
//!
//! Models the networks the paper's Global File Systems ran over: the
//! TeraGrid backbone, SciNet show-floor uplinks, site LANs, and (via
//! `simsan`) Fibre Channel fabrics — as a routed topology of directed
//! capacity links.
//!
//! Bulk data moves as **fluid flows** whose rates are re-solved to max-min
//! fairness (with TCP window caps) whenever the flow set changes; control
//! traffic moves as **messages** that experience latency but consume no
//! modeled bandwidth. See [`network::Network`] for the engine and
//! [`fairshare::allocate`] for the solver.

pub mod fairshare;
pub mod network;
pub mod topology;

pub use network::{FlowId, FlowSpec, NetWorld, Network};
pub use topology::{Link, LinkId, Node, NodeId, Topology, TopologyBuilder};
