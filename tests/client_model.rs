//! Model-based testing of the full client operation path: random
//! write/read/truncate sequences executed through mounts, tokens, RPCs,
//! NSD service and flows — compared byte-for-byte against a plain
//! `Vec<u8>` reference file.

use bytes::Bytes;
use globalfs::gfs::client;
use globalfs::gfs::fscore::FsConfig;
use globalfs::gfs::types::{ClientId, FsError, Handle, OpenFlags, Owner};
use globalfs::gfs::world::{FsParams, GfsWorld, WorldBuilder};
use globalfs::simcore::{Bandwidth, Sim, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

/// One step of the random program.
#[derive(Clone, Debug)]
enum Op {
    Write { offset: u64, len: usize, fill: u8 },
    Read { offset: u64, len: u64 },
    Truncate { size: u64 },
    Fsync,
}

/// Draw one random op (formerly a proptest strategy; now a seeded draw so
/// the hermetic build needs no registry crates).
fn random_op(r: &mut StdRng) -> Op {
    match r.gen_range(0u64..=3) {
        0 => Op::Write {
            offset: r.gen_range(0u64..=199_999),
            len: r.gen_range(1usize..=49_999),
            fill: r.gen_range(0u64..=255) as u8,
        },
        1 => Op::Read {
            offset: r.gen_range(0u64..=249_999),
            len: r.gen_range(1u64..=79_999),
        },
        2 => Op::Truncate {
            size: r.gen_range(0u64..=249_999),
        },
        _ => Op::Fsync,
    }
}

fn world() -> (Sim<GfsWorld>, GfsWorld, ClientId) {
    let mut b = WorldBuilder::new(77);
    b.key_bits(384);
    let srv = b.topo().node("srv");
    let cli = b.topo().node("cli");
    b.topo().duplex_link(
        cli,
        srv,
        Bandwidth::gbit(1.0),
        SimDuration::from_millis(2),
        "lan",
    );
    let c = b.cluster("model");
    b.filesystem(
        c,
        FsParams::ideal(
            FsConfig::small_test("m"),
            srv,
            vec![srv],
            Bandwidth::mbyte(500.0),
            SimDuration::from_micros(100),
        ),
    );
    let client = b.client(c, cli, 64); // small pool: forces evictions
    let (sim, w) = b.build();
    (sim, w, client)
}

/// Apply the ops through the simulator and against the model; verify every
/// read against the model and the final stat size.
fn run_case(ops: Vec<Op>) {
    let (mut sim, mut w, client) = world();
    let model: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let failures: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let finished = Rc::new(std::cell::Cell::new(false));

    {
        let model = model.clone();
        let failures = failures.clone();
        let finished = finished.clone();
        client::mount(&mut sim, &mut w, client, "m", gfs_auth::handshake::AccessMode::ReadWrite, move |sim, w, r| {
            r.unwrap();
            client::open(
                sim,
                w,
                client,
                "m",
                "/model.bin",
                OpenFlags::ReadWrite,
                Owner::local(1, 1),
                move |sim, w, r| {
                    let h = r.unwrap();
                    step(sim, w, client, h, ops, 0, model, failures, finished);
                },
            );
        });
    }
    sim.run(&mut w);
    assert!(finished.get(), "op sequence did not run to completion");
    let fails = failures.borrow();
    assert!(fails.is_empty(), "mismatches: {:?}", *fails);
    // Final size agreement.
    let model_len = model.borrow().len() as u64;
    let fs_size = w.fss[0].core.stat("/model.bin").unwrap().size;
    assert_eq!(fs_size, model_len, "final size mismatch");
}

#[allow(clippy::too_many_arguments)]
fn step(
    sim: &mut Sim<GfsWorld>,
    w: &mut GfsWorld,
    client: ClientId,
    h: Handle,
    ops: Vec<Op>,
    idx: usize,
    model: Rc<RefCell<Vec<u8>>>,
    failures: Rc<RefCell<Vec<String>>>,
    finished: Rc<std::cell::Cell<bool>>,
) {
    let Some(op) = ops.get(idx).cloned() else {
        // Close (flushes) and finish.
        client::close(sim, w, client, h, move |_s, _w, r| {
            r.unwrap();
            finished.set(true);
        });
        return;
    };
    let model2 = model.clone();
    let failures2 = failures.clone();
    let next = move |sim: &mut Sim<GfsWorld>, w: &mut GfsWorld| {
        step(sim, w, client, h, ops, idx + 1, model2, failures2, finished);
    };
    match op {
        Op::Write { offset, len, fill } => {
            {
                let mut m = model.borrow_mut();
                if m.len() < (offset as usize) + len {
                    m.resize(offset as usize + len, 0);
                }
                m[offset as usize..offset as usize + len].fill(fill);
            }
            let data = Bytes::from(vec![fill; len]);
            client::write(sim, w, client, h, offset, data, move |sim, w, r| {
                r.unwrap();
                next(sim, w);
            });
        }
        Op::Read { offset, len } => {
            let expect: Vec<u8> = {
                let m = model.borrow();
                let end = ((offset + len) as usize).min(m.len());
                if offset as usize >= m.len() {
                    Vec::new()
                } else {
                    m[offset as usize..end].to_vec()
                }
            };
            let fail_log = failures.clone();
            client::read(sim, w, client, h, offset, len, move |sim, w, r| {
                let got = r.unwrap();
                if got.as_ref() != expect.as_slice() {
                    fail_log.borrow_mut().push(format!(
                        "read({offset},{len}): got {} bytes, want {} (first diff at {:?})",
                        got.len(),
                        expect.len(),
                        got.iter().zip(&expect).position(|(a, b)| a != b)
                    ));
                }
                next(sim, w);
            });
        }
        Op::Truncate { size } => {
            {
                let mut m = model.borrow_mut();
                m.resize(size as usize, 0);
            }
            client::truncate(sim, w, client, h, size, move |sim, w, r| {
                r.unwrap();
                next(sim, w);
            });
        }
        Op::Fsync => {
            client::fsync(sim, w, client, h, move |sim, w, r| {
                r.unwrap();
                next(sim, w);
            });
        }
    }
}

#[test]
fn client_path_matches_reference_model() {
    let mut r = StdRng::seed_from_u64(0xc11e);
    for _case in 0..12 {
        let n = r.gen_range(1usize..=24);
        let ops: Vec<Op> = (0..n).map(|_| random_op(&mut r)).collect();
        run_case(ops);
    }
}

#[test]
fn regression_truncate_then_read_sees_zeros() {
    // Directed case: write, truncate down, extend by truncate up, read —
    // the re-extended region must read as zeros (hole), not stale cache.
    run_case(vec![
        Op::Write { offset: 0, len: 100_000, fill: 0xAA },
        Op::Fsync,
        Op::Truncate { size: 10_000 },
        Op::Truncate { size: 50_000 },
        Op::Read { offset: 0, len: 50_000 },
    ]);
}

#[test]
fn regression_overlapping_unaligned_writes() {
    run_case(vec![
        Op::Write { offset: 1000, len: 70_000, fill: 1 },
        Op::Write { offset: 60_000, len: 70_000, fill: 2 },
        Op::Write { offset: 5, len: 10, fill: 3 },
        Op::Read { offset: 0, len: 140_000 },
    ]);
}

#[test]
fn regression_read_past_truncated_eof() {
    run_case(vec![
        Op::Write { offset: 0, len: 200_000, fill: 9 },
        Op::Truncate { size: 1 },
        Op::Read { offset: 0, len: 200_000 },
    ]);
}

#[test]
fn rename_is_visible_through_the_op_path() {
    let (mut sim, mut w, client) = world();
    let ok = Rc::new(std::cell::Cell::new(false));
    let ok2 = ok.clone();
    client::mount(&mut sim, &mut w, client, "m", gfs_auth::handshake::AccessMode::ReadWrite, move |sim, w, r| {
        r.unwrap();
        client::open(sim, w, client, "m", "/a", OpenFlags::Write, Owner::local(1, 1), move |sim, w, r| {
            let h = r.unwrap();
            client::write(sim, w, client, h, 0, Bytes::from_static(b"payload"), move |sim, w, r| {
                r.unwrap();
                client::close(sim, w, client, h, move |sim, w, r| {
                    r.unwrap();
                    client::rename(sim, w, client, "m", "/a", "/b", move |sim, w, r| {
                        r.unwrap();
                        client::stat(sim, w, client, "m", "/a", move |sim, w, r| {
                            assert!(matches!(r, Err(FsError::NotFound(_))));
                            client::stat(sim, w, client, "m", "/b", move |_s, _w, r| {
                                assert_eq!(r.unwrap().size, 7);
                                ok2.set(true);
                            });
                        });
                    });
                });
            });
        });
    });
    sim.run(&mut w);
    assert!(ok.get());
}
