//! End-to-end cache effectiveness under skewed access: a Zipf-distributed
//! NVO query stream against a WAN-mounted filesystem. The client page
//! pool should absorb the hot set — the mechanism that §8's "automatic
//! caching ... integral piece of the overall file access mechanism"
//! anticipates.

use globalfs::gfs::client;
use globalfs::gfs::fscore::FsConfig;
use globalfs::gfs::types::{ClientId, OpenFlags, Owner};
use globalfs::gfs::world::{FsParams, GfsWorld, WorldBuilder};
use globalfs::scenarios::driver::run_ops;
use globalfs::simcore::{det_rng, Bandwidth, Sim, SimDuration};
use globalfs::workloads::zipf::nvo_zipf_queries;
use globalfs::workloads::Workload;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

fn bed(pool_pages: usize) -> (Sim<GfsWorld>, GfsWorld, ClientId) {
    let mut b = WorldBuilder::new(66);
    b.key_bits(384);
    let srv = b.topo().node("archive");
    let cli = b.topo().node("site");
    b.topo().duplex_link(
        cli,
        srv,
        Bandwidth::gbit(1.0),
        SimDuration::from_millis(30),
        "wan",
    );
    let c = b.cluster("z");
    b.filesystem(
        c,
        FsParams::ideal(
            FsConfig {
                name: "catalog".into(),
                block_size: 64 * 1024,
                nsd_blocks: 1 << 14,
                nsd_count: 8,
                data_mode: globalfs::gfs::fscore::DataMode::Stored,
            },
            srv,
            vec![srv],
            Bandwidth::mbyte(400.0),
            SimDuration::from_micros(300),
        ),
    );
    let client = b.client(c, cli, pool_pages);
    let (sim, w) = b.build();
    (sim, w, client)
}

/// Run a query workload against a 16 MB catalog file; returns
/// (elapsed_seconds, cache_hits, cache_misses).
fn run_queries(pool_pages: usize, wl: Workload) -> (f64, u64, u64) {
    let (mut sim, mut w, client) = bed(pool_pages);
    let done = Rc::new(Cell::new(0u64));
    let d = done.clone();
    let started = Rc::new(RefCell::new(None::<globalfs::simcore::SimTime>));
    let st = started.clone();
    client::mount(&mut sim, &mut w, client, "catalog", gfs_auth::handshake::AccessMode::ReadWrite, move |sim, w, r| {
        r.unwrap();
        client::open(sim, w, client, "catalog", "/objects", OpenFlags::ReadWrite, Owner::local(1, 1), move |sim, w, r| {
            let h = r.unwrap();
            // Materialize the 16 MB object store, then run the queries.
            let data = bytes::Bytes::from(vec![0x11u8; 16 << 20]);
            client::write(sim, w, client, h, 0, data, move |sim, w, r| {
                r.unwrap();
                client::fsync(sim, w, client, h, move |sim, w, r| {
                    r.unwrap();
                    // Reset cache counters and drop pages: queries start cold.
                    let inode = w.clients[client.0 as usize].handles[&h].inode;
                    let c = &mut w.clients[client.0 as usize];
                    c.pool.invalidate_file(globalfs::gfs::types::FsId(0), inode);
                    c.pool.hits = 0;
                    c.pool.misses = 0;
                    *st.borrow_mut() = Some(sim.now());
                    run_ops(sim, w, client, h, wl, move |sim, _w, r| {
                        r.unwrap();
                        d.set(sim.now().as_nanos());
                    });
                });
            });
        });
    });
    sim.run(&mut w);
    assert!(done.get() > 0, "query run did not complete");
    let start = started.borrow().expect("started");
    let elapsed = globalfs::simcore::SimTime::from_nanos(done.get())
        .since(start)
        .as_secs_f64();
    let pool = &w.clients[client.0 as usize].pool;
    (elapsed, pool.hits, pool.misses)
}

#[test]
fn zipf_skew_makes_the_page_pool_effective() {
    // 300 queries over 256 × 64 KiB objects in a 16 MB file, Zipf(1.1).
    let mut rng = det_rng(4, "zipf-int");
    let wl = nvo_zipf_queries(&mut rng, 300, 256, 64 * 1024, 1.1);
    // Big pool (whole file fits): most queries hit cache.
    let (t_big, hits_big, misses_big) = run_queries(512, wl.clone());
    let hit_rate = hits_big as f64 / (hits_big + misses_big) as f64;
    assert!(
        hit_rate > 0.5,
        "hit rate {hit_rate:.2} too low under Zipf skew ({hits_big}/{misses_big})"
    );
    // Tiny pool (16 pages): constant re-fetching over the WAN.
    let (t_small, hits_small, _m) = run_queries(16, wl);
    assert!(hits_small < hits_big);
    assert!(
        t_small > 1.5 * t_big,
        "cache-starved run ({t_small:.2}s) not slower than cached ({t_big:.2}s)"
    );
}

#[test]
fn uniform_access_defeats_small_caches() {
    // Control: uniform queries over the same objects — a 16-page pool gets
    // almost no hits, confirming the skew (not the pool size) is what the
    // previous test measures.
    let mut rng = det_rng(5, "uniform-int");
    let wl = globalfs::workloads::nvo_queries(&mut rng, 200, 16 << 20, 64 * 1024, 64 * 1024);
    let (_t, hits, misses) = run_queries(16, wl);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    assert!(
        hit_rate < 0.35,
        "uniform access should mostly miss a tiny pool, got {hit_rate:.2}"
    );
}
