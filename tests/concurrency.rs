//! Concurrency semantics under token contention: GPFS guarantees that a
//! write is applied atomically with respect to other writers — the
//! byte-range token serializes them, and a revocation flushes the loser's
//! pages before the winner proceeds. These tests drive genuinely
//! concurrent clients (interleaved in simulated time) and check that no
//! torn mixtures ever become visible.

#![allow(clippy::type_complexity)] // Sim callback signatures are inherent to the event-driven style

use bytes::Bytes;
use globalfs::gfs::client;
use globalfs::gfs::fscore::FsConfig;
use globalfs::gfs::types::{ClientId, FsId, Handle, OpenFlags, Owner};
use globalfs::gfs::world::{FsParams, GfsWorld, WorldBuilder};
use globalfs::simcore::{Bandwidth, Sim, SimDuration};
use std::cell::Cell;
use std::rc::Rc;

/// N clients on distinct nodes around one manager.
fn bed(n: usize) -> (Sim<GfsWorld>, GfsWorld, Vec<ClientId>) {
    let mut b = WorldBuilder::new(88);
    b.key_bits(384);
    let mgr = b.topo().node("mgr");
    let sw = b.topo().node("sw");
    b.topo()
        .duplex_link(mgr, sw, Bandwidth::gbit(10.0), SimDuration::from_micros(50), "m");
    let c = b.cluster("conc");
    b.filesystem(
        c,
        FsParams::ideal(
            FsConfig::small_test("cfs"),
            mgr,
            vec![mgr],
            Bandwidth::mbyte(800.0),
            SimDuration::from_micros(100),
        ),
    );
    let mut clients = Vec::new();
    for i in 0..n {
        let node = b.topo().node(format!("c{i}"));
        b.topo().duplex_link(
            node,
            sw,
            Bandwidth::gbit(1.0),
            SimDuration::from_millis(1 + i as u64), // staggered latencies
            format!("l{i}"),
        );
        clients.push(b.client(c, node, 128));
    }
    let (sim, w) = b.build();
    (sim, w, clients)
}

/// Mount + open the same file at every client, then run `body`.
fn with_open_handles(
    sim: &mut Sim<GfsWorld>,
    w: &mut GfsWorld,
    clients: &[ClientId],
    body: impl FnOnce(&mut Sim<GfsWorld>, &mut GfsWorld, Vec<(ClientId, Handle)>) + 'static,
) {
    let total = clients.len();
    let opened: Rc<std::cell::RefCell<Vec<(ClientId, Handle)>>> =
        Rc::new(std::cell::RefCell::new(Vec::new()));
    let body: Rc<std::cell::RefCell<Option<Box<dyn FnOnce(&mut Sim<GfsWorld>, &mut GfsWorld, Vec<(ClientId, Handle)>)>>>> =
        Rc::new(std::cell::RefCell::new(Some(Box::new(body))));
    for &cid in clients {
        let opened = opened.clone();
        let body = body.clone();
        client::mount(sim, w, cid, "cfs", gfs_auth::handshake::AccessMode::ReadWrite, move |sim, w, r| {
            r.unwrap();
            client::open(sim, w, cid, "cfs", "/contested", OpenFlags::ReadWrite, Owner::local(1, 1), move |sim, w, r| {
                let h = r.unwrap();
                opened.borrow_mut().push((cid, h));
                if opened.borrow().len() == total {
                    let handles = opened.borrow().clone();
                    (body.borrow_mut().take().unwrap())(sim, w, handles);
                }
            });
        });
    }
}

const REGION: u64 = 200_000; // spans 4 blocks, unaligned tail

#[test]
fn contested_writes_are_atomic_never_torn() {
    let (mut sim, mut w, clients) = bed(3);
    let done = Rc::new(Cell::new(0u32));
    let d = done.clone();
    let cl = clients.clone();
    with_open_handles(&mut sim, &mut w, &cl, move |sim, w, handles| {
        // Every client writes the whole region with its own fill byte,
        // three rounds each, all launched at once — the token manager
        // serializes them in simulated-time order.
        for round in 0..3u8 {
            for (i, &(cid, h)) in handles.iter().enumerate() {
                let fill = 0x10 * (i as u8 + 1) + round;
                let d = d.clone();
                let data = Bytes::from(vec![fill; REGION as usize]);
                client::write(sim, w, cid, h, 0, data, move |_s, _w, r| {
                    r.unwrap();
                    d.set(d.get() + 1);
                });
            }
        }
    });
    sim.run(&mut w);
    assert_eq!(done.get(), 9, "all writes must complete");

    // Flush everything via closes, then inspect authoritative bytes.
    let flushed = Rc::new(Cell::new(0u32));
    for c in &clients {
        let handles: Vec<Handle> = w.clients[c.0 as usize].handles.keys().copied().collect();
        for h in handles {
            let f = flushed.clone();
            client::close(&mut sim, &mut w, *c, h, move |_s, _w, r| {
                r.unwrap();
                f.set(f.get() + 1);
            });
        }
    }
    sim.run(&mut w);
    assert!(flushed.get() >= 3);

    let fs = FsId(0);
    let core = &w.fss[fs.0 as usize].core;
    let inode = core.lookup("/contested").unwrap();
    let bs = core.config.block_size;
    let mut content = Vec::new();
    for (b, addr) in core.block_map(inode, 0, REGION).unwrap() {
        let data = addr.map(|a| core.get_block_data(a)).unwrap_or_default();
        let start = b * bs;
        let end = (start + bs).min(REGION);
        content.extend_from_slice(&data[..(end - start) as usize]);
    }
    assert_eq!(content.len() as u64, REGION);
    // Atomicity: the final region is uniformly ONE writer's fill value.
    let first = content[0];
    assert!(
        content.iter().all(|b| *b == first),
        "torn write: saw bytes {:?} in the contested region",
        {
            let mut vals: Vec<u8> = content.clone();
            vals.sort();
            vals.dedup();
            vals
        }
    );
    // And contention actually happened (this test would be vacuous
    // otherwise).
    assert!(
        w.fss[0].tokens.revocations >= 2,
        "only {} revocations — no real contention",
        w.fss[0].tokens.revocations
    );
}

#[test]
fn disjoint_writers_proceed_without_revocation() {
    let (mut sim, mut w, clients) = bed(4);
    let done = Rc::new(Cell::new(0u32));
    let d = done.clone();
    let cl = clients.clone();
    with_open_handles(&mut sim, &mut w, &cl, move |sim, w, handles| {
        for (i, &(cid, h)) in handles.iter().enumerate() {
            let base = i as u64 * 100_000;
            let fill = i as u8 + 1;
            let d = d.clone();
            client::write(sim, w, cid, h, base, Bytes::from(vec![fill; 100_000]), move |sim, w, r| {
                r.unwrap();
                client::fsync(sim, w, cid, h, move |_s, _w, r| {
                    r.unwrap();
                    d.set(d.get() + 1);
                });
            });
        }
    });
    sim.run(&mut w);
    assert_eq!(done.get(), 4);
    // Block-aligned 100 KB regions are NOT block-aligned (64 KiB blocks),
    // so neighbours share boundary blocks — some revocations are expected
    // there, but far fewer than writes; and every region's interior bytes
    // must be intact.
    let core = &w.fss[0].core;
    let inode = core.lookup("/contested").unwrap();
    let bs = core.config.block_size;
    for i in 0..4u64 {
        // Check a safely interior span of each region.
        let start = i * 100_000 + 20_000;
        let len = 60_000u64;
        let mut ok = true;
        for (b, addr) in core.block_map(inode, start, len).unwrap() {
            let data = core.get_block_data(addr.expect("interior blocks exist"));
            let bstart = b * bs;
            let s = start.max(bstart) - bstart;
            let e = (start + len).min(bstart + bs) - bstart;
            ok &= data[s as usize..e as usize]
                .iter()
                .all(|x| *x == i as u8 + 1);
        }
        assert!(ok, "region {i} interior corrupted");
    }
}
