//! Failure injection: NSD server failover. GPFS serves each NSD through a
//! primary server with backups; when the primary dies, clients reroute.
//! The paper's production design (§5) planned exactly this redundancy
//! (dual HBAs, dual controllers per DS4100, two NSD servers per LUN).

use bytes::Bytes;
use globalfs::gfs::client;
use globalfs::gfs::fscore::{DataMode, FsConfig};
use globalfs::gfs::types::{ClientId, FsError, FsId, NsdId, OpenFlags, Owner};
use globalfs::gfs::world::{FsParams, GfsWorld, NsdBacking, WorldBuilder};
use globalfs::scenarios::recovery::{
    crash_one_of_n, disk_failure_during_sweep, link_flap_during_enzo, CrashConfig,
};
use globalfs::simcore::{Bandwidth, Sim, SimDuration};
use globalfs::simnet::NodeId;
use std::cell::Cell;
use std::rc::Rc;

/// Two NSD servers behind one switch, one client.
fn bed() -> (Sim<GfsWorld>, GfsWorld, ClientId, FsId, NodeId, NodeId) {
    let mut b = WorldBuilder::new(55);
    b.key_bits(384);
    let sw = b.topo().node("sw");
    let s1 = b.topo().node("nsd-1");
    let s2 = b.topo().node("nsd-2");
    let cli = b.topo().node("client");
    for (n, name) in [(s1, "l1"), (s2, "l2"), (cli, "lc")] {
        b.topo()
            .duplex_link(n, sw, Bandwidth::gbit(1.0), SimDuration::from_micros(100), name);
    }
    let c = b.cluster("ha");
    let fs = b.filesystem(
        c,
        FsParams {
            config: FsConfig {
                name: "hafs".into(),
                block_size: 64 * 1024,
                nsd_blocks: 4096,
                nsd_count: 8,
                data_mode: DataMode::Stored,
            },
            manager: s1,
            managers: 1,
            nsd_servers: vec![s1, s2],
            storage_nodes: vec![],
            backing: vec![NsdBacking::Ideal {
                rate: Bandwidth::mbyte(400.0).bytes_per_sec(),
                latency: SimDuration::from_micros(200),
            }],
            exported: false,
        },
    );
    let client = b.client(c, cli, 256);
    let (sim, w) = b.build();
    (sim, w, client, fs, s1, s2)
}

#[test]
fn nsds_fail_over_to_surviving_server() {
    let (mut sim, mut w, client, fs, s1, s2) = bed();
    // Before failure: NSDs split across both servers.
    let inst = &w.fss[fs.0 as usize];
    assert_eq!(inst.try_server_of(NsdId(0)), Some(s1));
    assert_eq!(inst.try_server_of(NsdId(1)), Some(s2));

    let ok = Rc::new(Cell::new(false));
    let ok2 = ok.clone();
    let payload = Bytes::from(vec![0x77u8; 300_000]);
    let expect = payload.clone();
    client::mount(&mut sim, &mut w, client, "hafs", gfs_auth::handshake::AccessMode::ReadWrite, move |sim, w, r| {
        r.unwrap();
        client::open(sim, w, client, "hafs", "/survive", OpenFlags::ReadWrite, Owner::local(1, 1), move |sim, w, r| {
            let h = r.unwrap();
            client::write(sim, w, client, h, 0, payload, move |sim, w, r| {
                r.unwrap();
                client::fsync(sim, w, client, h, move |sim, w, r| {
                    r.unwrap();
                    // Kill server 1 (also the manager's *data* role; the
                    // manager RPC endpoint survives — GPFS would elect a
                    // new fs manager, which we model as instantaneous).
                    w.fss[fs.0 as usize].fail_server(s1);
                    // Drop the cache so reads must hit the surviving server.
                    let inode = w.clients[client.0 as usize].handles[&h].inode;
                    w.clients[client.0 as usize].pool.invalidate_file(fs, inode);
                    client::read(sim, w, client, h, 0, 300_000, move |_s, w, r| {
                        let got = r.unwrap();
                        assert_eq!(got, expect, "data served through backup differs");
                        // Every NSD now routes to s2.
                        let inst = &w.fss[fs.0 as usize];
                        for i in 0..8 {
                            assert_eq!(inst.try_server_of(NsdId(i)), Some(s2));
                        }
                        ok2.set(true);
                    });
                });
            });
        });
    });
    sim.run(&mut w);
    assert!(ok.get());
}

#[test]
fn restore_rebalances_service() {
    let (_sim, mut w, _client, fs, s1, s2) = bed();
    w.fss[fs.0 as usize].fail_server(s1);
    assert_eq!(w.fss[fs.0 as usize].try_server_of(NsdId(0)), Some(s2));
    w.fss[fs.0 as usize].restore_server(s1);
    assert_eq!(w.fss[fs.0 as usize].try_server_of(NsdId(0)), Some(s1));
}

#[test]
fn total_failure_is_unavailability() {
    // Losing every NSD server is typed unavailability, not a crash: the
    // routing query returns None, and the session surface reports the
    // filesystem as Degraded.
    let (mut sim, mut w, client, fs, s1, s2) = bed();
    let sess = w.open_session(client);
    let saw = Rc::new(std::cell::RefCell::new(None::<FsError>));
    let saw2 = saw.clone();
    sess.mount(&mut sim, &mut w, "hafs", gfs_auth::handshake::AccessMode::ReadWrite, move |sim, w, r| {
        r.unwrap();
        sess.open(sim, w, "/degraded", OpenFlags::ReadWrite, Owner::local(1, 1), move |sim, w, r| {
            let h = r.unwrap();
            sess.write(sim, w, h, 0, Bytes::from(vec![5u8; 200_000]), move |sim, w, r| {
                r.unwrap();
                w.fss[fs.0 as usize].fail_server(s1);
                w.fss[fs.0 as usize].fail_server(s2);
                assert!(w.fss[fs.0 as usize].try_server_of(NsdId(0)).is_none());
                sess.fsync(sim, w, h, move |_s, _w, r| {
                    *saw2.borrow_mut() = Some(r.unwrap_err());
                });
            });
        });
    });
    sim.run(&mut w);
    assert!(
        matches!(saw.borrow().as_ref(), Some(FsError::Degraded(_))),
        "session surface must report total server loss as Degraded, got {:?}",
        saw.borrow()
    );
}

#[test]
fn total_failure_surfaces_server_down_to_the_client() {
    // ...but the client data path reports it as a typed error instead of
    // tearing the process down.
    let (mut sim, mut w, client, fs, s1, s2) = bed();
    let seen = Rc::new(std::cell::RefCell::new(None::<FsError>));
    let seen2 = seen.clone();
    client::mount(&mut sim, &mut w, client, "hafs", gfs_auth::handshake::AccessMode::ReadWrite, move |sim, w, r| {
        r.unwrap();
        client::open(sim, w, client, "hafs", "/doomed", OpenFlags::ReadWrite, Owner::local(1, 1), move |sim, w, r| {
            let h = r.unwrap();
            client::write(sim, w, client, h, 0, Bytes::from(vec![9u8; 200_000]), move |sim, w, r| {
                r.unwrap();
                client::fsync(sim, w, client, h, move |sim, w, r| {
                    r.unwrap();
                    // Both servers die; the cache is dropped so the read
                    // must go to storage.
                    w.fss[fs.0 as usize].fail_server(s1);
                    w.fss[fs.0 as usize].fail_server(s2);
                    let inode = w.clients[client.0 as usize].handles[&h].inode;
                    w.clients[client.0 as usize].pool.invalidate_file(fs, inode);
                    client::read(sim, w, client, h, 0, 200_000, move |_s, _w, r| {
                        *seen2.borrow_mut() = Some(r.expect_err("read with no servers must fail"));
                    });
                });
            });
        });
    });
    sim.run(&mut w);
    assert_eq!(*seen.borrow(), Some(FsError::ServerDown));
}

#[test]
fn writes_after_failover_land_and_survive_restore() {
    let (mut sim, mut w, client, fs, s1, _s2) = bed();
    let ok = Rc::new(Cell::new(false));
    let ok2 = ok.clone();
    client::mount(&mut sim, &mut w, client, "hafs", gfs_auth::handshake::AccessMode::ReadWrite, move |sim, w, r| {
        r.unwrap();
        // Fail the primary before any I/O.
        w.fss[fs.0 as usize].fail_server(s1);
        client::open(sim, w, client, "hafs", "/via-backup", OpenFlags::ReadWrite, Owner::local(1, 1), move |sim, w, r| {
            let h = r.unwrap();
            client::write(sim, w, client, h, 0, Bytes::from(vec![5u8; 100_000]), move |sim, w, r| {
                r.unwrap();
                client::close(sim, w, client, h, move |sim, w, r| {
                    r.unwrap();
                    // Primary comes back; data must read fine through it.
                    w.fss[fs.0 as usize].restore_server(s1);
                    client::open(sim, w, client, "hafs", "/via-backup", OpenFlags::Read, Owner::local(1, 1), move |sim, w, r| {
                        let h = r.unwrap();
                        client::read(sim, w, client, h, 0, 100_000, move |_s, _w, r| {
                            let got = r.unwrap();
                            assert!(got.iter().all(|b| *b == 5));
                            ok2.set(true);
                        });
                    });
                });
            });
        });
    });
    sim.run(&mut w);
    assert!(ok.get());
}

// ---------------------------------------------------------------------
// Scheduled fault injection: the acceptance scenarios from EXPERIMENTS.md,
// driven through the public ScenarioBuilder / FaultPlan API.
// ---------------------------------------------------------------------

/// Crash 1 of 64 NSD servers mid-write: the write completes, fsck is
/// clean, a byte-exact read-back proves no data loss, and the recovery
/// metrics (time-to-failover, throughput dip) are bounded.
#[test]
fn crashing_one_of_64_servers_loses_no_data() {
    let report = crash_one_of_n(&CrashConfig::default());
    assert_eq!(report.completed, 1, "write failed: {:?}", report.errors);
    assert!(report.errors.is_empty(), "errors: {:?}", report.errors);
    assert!(report.fsck_clean, "fsck found inconsistencies after the crash");
    assert!(report.data_intact, "read-back mismatch: data was lost");
    let ttf = report
        .time_to_failover
        .expect("no failover recorded in the recovery log");
    assert!(
        (1.0..5.0).contains(&ttf.as_secs_f64()),
        "time-to-failover out of band: {ttf:?}"
    );
    let dip = report.dip.expect("no throughput dip recorded");
    assert!(
        dip.duration.as_secs_f64() < 4.0,
        "recovery stall unbounded: {:?}",
        dip.duration
    );
}

/// Two same-seed runs of the crash experiment replay byte-identical
/// series and identical recovery timings.
#[test]
fn fault_injection_replays_are_byte_identical() {
    let a = crash_one_of_n(&CrashConfig::default());
    let b = crash_one_of_n(&CrashConfig::default());
    assert_eq!(a.finish, b.finish, "finish times diverged under same seed");
    assert_eq!(
        a.client_series.points, b.client_series.points,
        "client NIC series diverged under same seed"
    );
    assert_eq!(a.time_to_detect, b.time_to_detect);
    assert_eq!(a.time_to_failover, b.time_to_failover);
}

/// The TeraGrid path flaps during an Enzo checkpoint: the stalled stream
/// resumes on restore and the campaign's makespan stretches by roughly the
/// outage, no more.
#[test]
fn link_flap_during_enzo_checkpoint_stretches_not_breaks() {
    let outage = SimDuration::from_secs(5);
    let flapped = link_flap_during_enzo(21, outage);
    assert!(flapped.completed, "checkpoint campaign did not finish");
    let clean = link_flap_during_enzo(21, SimDuration::from_nanos(1));
    let stretch = flapped.makespan.as_secs_f64() - clean.makespan.as_secs_f64();
    assert!(
        (0.8 * outage.as_secs_f64()..1.5 * outage.as_secs_f64() + 1.0).contains(&stretch),
        "makespan stretched {stretch:.1}s for a {:.1}s outage",
        outage.as_secs_f64()
    );
}

/// A SATA spindle dies during a Fig.11-style sweep: reads reconstruct from
/// parity, the run completes slower than baseline but bounded.
#[test]
fn disk_failure_during_fig11_sweep_degrades_gracefully() {
    let report = disk_failure_during_sweep(31);
    assert!(report.completed, "sweep failed: {:?}", report.errors);
    assert!(report.errors.is_empty(), "errors: {:?}", report.errors);
    assert!(report.degraded_reads > 0, "no reconstruction reads served");
    assert!(
        report.seconds > report.baseline_seconds,
        "degraded run {:.2}s not slower than baseline {:.2}s",
        report.seconds,
        report.baseline_seconds
    );
    assert!(
        report.seconds < 3.0 * report.baseline_seconds,
        "degraded run {:.2}s unbounded vs baseline {:.2}s",
        report.seconds,
        report.baseline_seconds
    );
}

// ---------------------------------------------------------------------
// Coalescing across fault boundaries
// ---------------------------------------------------------------------

/// One full-file read issued either as a single coalesced call (the client
/// groups the blocks into multi-block scatter-gather runs) or as one read
/// per block, racing a server crash that lands while the requests are in
/// flight. Both shapes must produce the same recovery outcomes — timeouts
/// detected, failover to the survivor, byte-intact data, no errors — while
/// the coalesced shape does it with strictly fewer wire requests.
#[test]
fn coalesced_scatter_gather_fails_over_like_per_block() {
    const BLOCK: u64 = 64 * 1024;
    const BLOCKS: u64 = 16;

    struct Outcome {
        intact: bool,
        errors: usize,
        timeouts: usize,
        failovers: usize,
        requests: u64,
        coalesced: u64,
    }

    let run = |per_block: bool| -> Outcome {
        let (mut sim, mut w, client, fs, s1, _s2) = bed();
        let pattern = |i: usize| (i % 251) as u8;
        let payload = Bytes::from((0..(BLOCKS * BLOCK) as usize).map(pattern).collect::<Vec<_>>());
        let intact = Rc::new(Cell::new(0u64));
        let errors = Rc::new(Cell::new(0usize));
        {
            let (intact, errors) = (intact.clone(), errors.clone());
            client::mount(&mut sim, &mut w, client, "hafs", gfs_auth::handshake::AccessMode::ReadWrite, move |sim, w, r| {
                r.unwrap();
                client::open(sim, w, client, "hafs", "/sg", OpenFlags::ReadWrite, Owner::local(1, 1), move |sim, w, r| {
                    let h = r.unwrap();
                    client::write(sim, w, client, h, 0, payload, move |sim, w, r| {
                        r.unwrap();
                        client::fsync(sim, w, client, h, move |sim, w, r| {
                            r.unwrap();
                            let inode = w.clients[client.0 as usize].handles[&h].inode;
                            w.clients[client.0 as usize].pool.invalidate_file(fs, inode);
                            w.nsd_stats = Default::default();
                            // Issue the read(s), then crash s1 while the
                            // requests are still on the wire (the RPC
                            // round trip is a few hundred µs).
                            let check = move |off: u64, got: &[u8], intact: &Rc<Cell<u64>>| {
                                if got.iter().enumerate().all(|(i, b)| *b == pattern(off as usize + i)) {
                                    intact.set(intact.get() + got.len() as u64);
                                }
                            };
                            if per_block {
                                for blk in 0..BLOCKS {
                                    let (intact, errors) = (intact.clone(), errors.clone());
                                    client::read(sim, w, client, h, blk * BLOCK, BLOCK, move |_s, _w, r| match r {
                                        Ok(got) => check(blk * BLOCK, &got, &intact),
                                        Err(_) => errors.set(errors.get() + 1),
                                    });
                                }
                            } else {
                                let (intact, errors) = (intact.clone(), errors.clone());
                                client::read(sim, w, client, h, 0, BLOCKS * BLOCK, move |_s, _w, r| match r {
                                    Ok(got) => check(0, &got, &intact),
                                    Err(_) => errors.set(errors.get() + 1),
                                });
                            }
                            let at = sim.now() + SimDuration::from_micros(50);
                            sim.at(at, move |_sim, w| {
                                w.fss[fs.0 as usize].fail_server(s1);
                            });
                        });
                    });
                });
            });
        }
        sim.run(&mut w);
        use globalfs::gfs::RecoveryWhat;
        Outcome {
            intact: intact.get() == BLOCKS * BLOCK,
            errors: errors.get(),
            timeouts: w.recovery.count(|e| matches!(e, RecoveryWhat::TimeoutDetected { .. })),
            failovers: w.recovery.count(|e| matches!(e, RecoveryWhat::FailedOver { .. })),
            requests: w.nsd_stats.requests,
            coalesced: w.nsd_stats.coalesced,
        }
    };

    let coalesced = run(false);
    let per_block = run(true);

    for (name, o) in [("coalesced", &coalesced), ("per-block", &per_block)] {
        assert!(o.intact, "{name}: read-back not byte-intact");
        assert_eq!(o.errors, 0, "{name}: reads errored");
        assert!(o.timeouts > 0, "{name}: crash produced no timeout detections");
        assert!(o.failovers > 0, "{name}: no failover recorded");
    }
    // The same recovery semantics, achieved with strictly fewer wire
    // requests: scatter-gather runs carry >1 block each.
    assert!(coalesced.coalesced > 0, "full-file read produced no multi-block runs");
    assert!(
        coalesced.requests < per_block.requests,
        "coalesced path sent {} requests, per-block sent {}",
        coalesced.requests,
        per_block.requests
    );
}

// ---------------------------------------------------------------------
// Request watchdogs: cancellable timers on the retry path
// ---------------------------------------------------------------------

/// Every data-path request arms a timeout watchdog; a successful response
/// must cancel it outright rather than leave a dead timer in the event
/// queue until it expires. A run of sequential reads (each far faster than
/// the 1.5 s timeout) must therefore hold `Sim::pending()` flat instead of
/// growing by one stale watchdog per request.
#[test]
fn completed_request_watchdogs_are_cancelled_not_leaked() {
    const BLOCKS: u64 = 32;
    const BLOCK: u64 = 64 * 1024;
    let (mut sim, mut w, client, fs, _s1, _s2) = bed();
    let pending_log: Rc<std::cell::RefCell<Vec<usize>>> = Rc::new(std::cell::RefCell::new(Vec::new()));

    fn read_chain(
        sim: &mut Sim<GfsWorld>,
        w: &mut GfsWorld,
        client: ClientId,
        h: globalfs::gfs::types::Handle,
        block: u64,
        log: Rc<std::cell::RefCell<Vec<usize>>>,
    ) {
        if block == BLOCKS {
            return;
        }
        client::read(sim, w, client, h, block * BLOCK, BLOCK, move |sim, w, r| {
            r.unwrap();
            log.borrow_mut().push(sim.pending());
            read_chain(sim, w, client, h, block + 1, log);
        });
    }

    {
        let log = pending_log.clone();
        client::mount(&mut sim, &mut w, client, "hafs", gfs_auth::handshake::AccessMode::ReadWrite, move |sim, w, r| {
            r.unwrap();
            client::open(sim, w, client, "hafs", "/flat", OpenFlags::ReadWrite, Owner::local(1, 1), move |sim, w, r| {
                let h = r.unwrap();
                client::write(sim, w, client, h, 0, Bytes::from(vec![3u8; (BLOCKS * BLOCK) as usize]), move |sim, w, r| {
                    r.unwrap();
                    client::fsync(sim, w, client, h, move |sim, w, r| {
                        r.unwrap();
                        let inode = w.clients[client.0 as usize].handles[&h].inode;
                        w.clients[client.0 as usize].pool.invalidate_file(fs, inode);
                        read_chain(sim, w, client, h, 0, log);
                    });
                });
            });
        });
    }
    sim.run(&mut w);
    let log = pending_log.borrow();
    assert_eq!(log.len() as u64, BLOCKS, "not every read completed");
    // Stale watchdogs would make the queue depth climb by ~1 per read;
    // with cancellation it stays at the steady-state handful.
    let (first, last) = (log[0], log[log.len() - 1]);
    assert!(
        last <= first + 4,
        "pending events grew across {BLOCKS} reads: first {first}, last {last} (log {log:?})"
    );
    assert_eq!(sim.pending(), 0, "events left after the run drained");
}

/// A request whose every attempt times out (the timeout is set below the
/// network round trip) must surface `FsError::Timeout` exactly once, even
/// though each attempt's response eventually arrives after its watchdog
/// fired; the late responses hit the dead one-shot slot and are dropped.
/// The client must remain fully usable afterwards.
#[test]
fn request_timeout_surfaces_exactly_once_despite_late_responses() {
    let (mut sim, mut w, client, fs, _s1, _s2) = bed();
    let outcomes: Rc<std::cell::RefCell<Vec<Result<usize, FsError>>>> =
        Rc::new(std::cell::RefCell::new(Vec::new()));
    let recovered = Rc::new(Cell::new(false));

    {
        let outcomes = outcomes.clone();
        let recovered = recovered.clone();
        client::mount(&mut sim, &mut w, client, "hafs", gfs_auth::handshake::AccessMode::ReadWrite, move |sim, w, r| {
            r.unwrap();
            client::open(sim, w, client, "hafs", "/flaky", OpenFlags::ReadWrite, Owner::local(1, 1), move |sim, w, r| {
                let h = r.unwrap();
                client::write(sim, w, client, h, 0, Bytes::from(vec![8u8; 65_536]), move |sim, w, r| {
                    r.unwrap();
                    client::fsync(sim, w, client, h, move |sim, w, r| {
                        r.unwrap();
                        let inode = w.clients[client.0 as usize].handles[&h].inode;
                        w.clients[client.0 as usize].pool.invalidate_file(fs, inode);
                        // Shorter than the ~600 µs round trip: every fetch
                        // attempt times out before its response lands.
                        w.costs.request_timeout = SimDuration::from_micros(300);
                        client::read(sim, w, client, h, 0, 65_536, move |sim, w, r| {
                            outcomes.borrow_mut().push(r.map(|b| b.len()));
                            // Sane timeout again: the same handle must work.
                            w.costs.request_timeout = SimDuration::from_millis(1500);
                            client::read(sim, w, client, h, 0, 65_536, move |_s, _w, r| {
                                assert_eq!(r.unwrap().len(), 65_536);
                                recovered.set(true);
                            });
                        });
                    });
                });
            });
        });
    }
    sim.run(&mut w);
    assert_eq!(
        *outcomes.borrow(),
        vec![Err(FsError::Timeout)],
        "the timed-out read must fail exactly once"
    );
    assert!(recovered.get(), "client unusable after a timed-out request");
    assert_eq!(sim.pending(), 0);
}

// ---------------------------------------------------------------------
// Manager crash/recovery and progress-keyed fault boundaries
// ---------------------------------------------------------------------

/// The namespace manager dies through the fault plan — so recovery is the
/// timed WAL replay on a surviving server, not the instant election that a
/// bare `fail_server` models. A metadata op issued into the outage is
/// dropped, times out, retries with backoff, and lands exactly once on the
/// recovered manager: the client just experiences a slow mkdir.
#[test]
fn metadata_op_rides_out_manager_crash_and_wal_recovery() {
    use globalfs::gfs::{apply_fault, FaultKind, RecoveryWhat};
    let (mut sim, mut w, client, fs, _s1, s2) = bed();
    let ok = Rc::new(Cell::new(false));
    let ok2 = ok.clone();
    client::mount(&mut sim, &mut w, client, "hafs", gfs_auth::handshake::AccessMode::ReadWrite, move |sim, w, r| {
        r.unwrap();
        // An acknowledged mutation, so the WAL has something to replay.
        client::mkdir(sim, w, client, "hafs", "/pre", Owner::local(1, 1), move |sim, w, r| {
            r.unwrap();
            apply_fault(sim, w, FaultKind::ServerCrash { fs, server: "nsd-1".into() });
            assert!(
                w.fss[fs.0 as usize].mgrs[0].recovering,
                "fault-plan manager crash must enter the WAL-recovery window"
            );
            // Issued straight into the outage: dropped at the dead manager,
            // retried until the replacement finishes replay.
            client::mkdir(sim, w, client, "hafs", "/during", Owner::local(1, 1), move |sim, w, r| {
                r.unwrap();
                client::stat(sim, w, client, "hafs", "/during", move |_s, w, r| {
                    r.unwrap();
                    let mgr = &w.fss[fs.0 as usize].mgrs[0];
                    assert_eq!(mgr.acting, s2, "takeover did not move the manager role");
                    assert_eq!(mgr.epoch, 1, "recovery must bump the manager epoch");
                    assert!(mgr.replayed >= 1, "WAL replay rebuilt no dedup state");
                    assert!(!mgr.recovering);
                    ok2.set(true);
                });
            });
        });
    });
    sim.run(&mut w);
    assert!(ok.get(), "metadata op never completed across the crash");
    assert!(
        w.recovery.count(|e| matches!(e, RecoveryWhat::TimeoutDetected { .. })) >= 1,
        "the outage was invisible: no watchdog ever fired"
    );
    assert!(
        w.recovery.count(|e| matches!(e, RecoveryWhat::FailedOver { .. })) >= 1,
        "no retry was recorded as landing on the new manager"
    );
    assert_eq!(sim.pending(), 0, "events left after the run drained");
}

/// A transient crash shorter than the detection window: the server is
/// restored *before* the read's watchdog fires, so the retry lands on the
/// same (now healthy) server — byte-intact data, a timeout detection, and
/// no failover, because there was never anywhere else to go.
#[test]
fn coalesced_read_retries_to_restored_server_after_transient_crash() {
    use globalfs::gfs::RecoveryWhat;
    const BLOCK: u64 = 64 * 1024;
    const BLOCKS: u64 = 16;
    let (mut sim, mut w, client, fs, s1, _s2) = bed();
    let pattern = |i: usize| (i % 241) as u8;
    let payload = Bytes::from((0..(BLOCKS * BLOCK) as usize).map(pattern).collect::<Vec<_>>());
    let intact = Rc::new(Cell::new(false));
    {
        let intact = intact.clone();
        client::mount(&mut sim, &mut w, client, "hafs", gfs_auth::handshake::AccessMode::ReadWrite, move |sim, w, r| {
            r.unwrap();
            client::open(sim, w, client, "hafs", "/transient", OpenFlags::ReadWrite, Owner::local(1, 1), move |sim, w, r| {
                let h = r.unwrap();
                client::write(sim, w, client, h, 0, payload, move |sim, w, r| {
                    r.unwrap();
                    client::fsync(sim, w, client, h, move |sim, w, r| {
                        r.unwrap();
                        let inode = w.clients[client.0 as usize].handles[&h].inode;
                        w.clients[client.0 as usize].pool.invalidate_file(fs, inode);
                        // One coalesced full-file read; the server dies while
                        // the scatter-gather runs are on the wire and comes
                        // back 1.2 s later — inside the 1.5 s timeout.
                        client::read(sim, w, client, h, 0, BLOCKS * BLOCK, move |_s, _w, r| {
                            let got = r.unwrap();
                            intact.set(got.iter().enumerate().all(|(i, b)| *b == pattern(i)));
                        });
                        let crash_at = sim.now() + SimDuration::from_micros(50);
                        sim.at(crash_at, move |sim, w| {
                            w.fss[fs.0 as usize].fail_server(s1);
                            sim.after(SimDuration::from_millis(1200), move |_s, w| {
                                w.fss[fs.0 as usize].restore_server(s1);
                            });
                        });
                    });
                });
            });
        });
    }
    sim.run(&mut w);
    assert!(intact.get(), "read-back not byte-intact across the transient crash");
    assert!(
        w.recovery.count(|e| matches!(e, RecoveryWhat::TimeoutDetected { .. })) > 0,
        "the crash produced no timeout detections"
    );
    assert_eq!(
        w.recovery.count(|e| matches!(e, RecoveryWhat::FailedOver { .. })),
        0,
        "retries should have landed on the restored primary, not failed over"
    );
    assert_eq!(sim.pending(), 0, "events left after the run drained");
}

// ---------------------------------------------------------------------
// Per-site subtree leases: delegate fast path, break, expulsion,
// re-admission
// ---------------------------------------------------------------------

/// The full subtree-lease lifecycle, staged over one world: a context
/// acquires a lease and serves ops at its local delegate; a conflicting
/// remote op breaks the lease like a token revocation (the responsive
/// holder acks and the remote op proceeds); an *unresponsive* holder —
/// partitioned off the network with the lease re-acquired — is expelled
/// when the break fuse burns down, its leases and tokens force-released;
/// and its next word to the manager after the heal re-admits it.
#[test]
fn subtree_lease_lifecycle_break_expel_readmit() {
    use globalfs::gfs::{apply_fault, FaultKind, RecoveryWhat};
    let mut b = WorldBuilder::new(56);
    b.key_bits(384);
    let sw = b.topo().node("sw");
    let s1 = b.topo().node("nsd-1");
    let s2 = b.topo().node("nsd-2");
    let ca = b.topo().node("client-a");
    let cb = b.topo().node("client-b");
    for (n, name) in [(s1, "l1"), (s2, "l2"), (ca, "la"), (cb, "lb")] {
        b.topo()
            .duplex_link(n, sw, Bandwidth::gbit(1.0), SimDuration::from_micros(100), name);
    }
    let c = b.cluster("ha");
    let fs = b.filesystem(
        c,
        FsParams {
            config: FsConfig {
                name: "hafs".into(),
                block_size: 64 * 1024,
                nsd_blocks: 4096,
                nsd_count: 8,
                data_mode: DataMode::Stored,
            },
            manager: s1,
            managers: 2,
            nsd_servers: vec![s1, s2],
            storage_nodes: vec![],
            backing: vec![NsdBacking::Ideal {
                rate: Bandwidth::mbyte(400.0).bytes_per_sec(),
                latency: SimDuration::from_micros(200),
            }],
            exported: false,
        },
    );
    let a = b.client(c, ca, 256);
    let bc = b.client(c, cb, 256);
    let (mut sim, mut w) = b.build();
    // Fan-in contexts so metadata rides envelopes — the path that checks
    // lease conflicts and runs the delegate.
    w.clients[a.0 as usize].fan_in = true;
    w.clients[bc.0 as usize].fan_in = true;
    let sa = w.open_session(a);
    let sb = w.open_session(bc);
    w.fss[fs.0 as usize]
        .core
        .mkdir("/proj", Owner::local(1, 1), 0)
        .unwrap();

    // Phase 1 — both contexts mount; A leases /proj and serves a mkdir at
    // its delegate without a manager round trip.
    let leased = Rc::new(Cell::new(false));
    {
        let leased = leased.clone();
        sa.mount(&mut sim, &mut w, "hafs", gfs_auth::handshake::AccessMode::ReadWrite, move |sim, w, r| {
            r.unwrap();
            sa.acquire_lease(sim, w, "/proj", move |sim, w, r| {
                r.unwrap();
                sa.mkdir(sim, w, "/proj/d0", Owner::local(1, 1), move |_s, _w, r| {
                    r.unwrap();
                    leased.set(true);
                });
            });
        });
    }
    sb.mount(&mut sim, &mut w, "hafs", gfs_auth::handshake::AccessMode::ReadWrite, |_s, _w, r| {
        r.unwrap();
    });
    sim.run(&mut w);
    assert!(leased.get(), "lease + delegated mkdir never completed");
    {
        let inst = &w.fss[fs.0 as usize];
        assert_eq!(inst.lease_grants, 1);
        assert_eq!(inst.leases.get("proj"), Some(&a), "manager must record the holder");
        assert!(
            inst.delegated_ops >= 1,
            "the leased mkdir should have run at the delegate"
        );
        assert!(w.clients[a.0 as usize].leases.contains(&(fs, "proj".into())));
    }

    // Phase 2 — a conflicting remote op from B breaks the lease like a
    // token revocation: A (responsive) acks, B's deferred op then lands.
    let saw_b = Rc::new(Cell::new(false));
    {
        let saw_b = saw_b.clone();
        sb.stat(&mut sim, &mut w, "/proj/d0", move |_s, _w, r| {
            r.unwrap();
            saw_b.set(true);
        });
    }
    sim.run(&mut w);
    assert!(saw_b.get(), "remote op never completed after the lease break");
    {
        let inst = &w.fss[fs.0 as usize];
        assert_eq!(inst.lease_breaks, 1);
        assert!(inst.leases.is_empty(), "break must clear the grant");
        assert!(inst.breaking.is_empty(), "break must resolve");
        assert!(w.clients[a.0 as usize].leases.is_empty(), "ack must clear the mirror");
        assert_eq!(inst.expulsions, 0, "a responsive holder is never expelled");
    }

    // Phase 3 — A re-acquires, then drops off the network. B's next
    // conflicting op starts a break nobody can ack; the fuse burns down
    // and the manager expels A, force-releasing its leases and tokens.
    let reacquired = Rc::new(Cell::new(false));
    {
        let reacquired = reacquired.clone();
        sa.acquire_lease(&mut sim, &mut w, "/proj", move |_s, _w, r| {
            r.unwrap();
            reacquired.set(true);
        });
    }
    sim.run(&mut w);
    assert!(reacquired.get());
    apply_fault(&mut sim, &mut w, FaultKind::Partition { node: "client-a".into() });
    let saw_b2 = Rc::new(Cell::new(false));
    {
        let saw_b2 = saw_b2.clone();
        sb.stat(&mut sim, &mut w, "/proj/d0", move |_s, _w, r| {
            r.unwrap();
            saw_b2.set(true);
        });
    }
    sim.run(&mut w);
    assert!(saw_b2.get(), "remote op must land once the holder is expelled");
    {
        let inst = &w.fss[fs.0 as usize];
        assert_eq!(inst.expulsions, 1, "unresponsive holder must be expelled");
        assert!(inst.expelled.contains(&a));
        assert!(inst.leases.is_empty() && inst.breaking.is_empty());
        let ac = &w.clients[a.0 as usize];
        assert!(ac.leases.is_empty(), "expulsion lapses the holder's lease term");
        assert!(
            ac.held_tokens.iter().all(|((f, _), _)| *f != fs),
            "expulsion must force-release the holder's tokens"
        );
        assert_eq!(
            w.recovery.count(|e| matches!(e, RecoveryWhat::Expelled { .. })),
            1
        );
    }

    // Phase 4 — heal the partition; A's first op re-admits it.
    apply_fault(&mut sim, &mut w, FaultKind::Heal { node: "client-a".into() });
    let back = Rc::new(Cell::new(false));
    {
        let back = back.clone();
        sa.stat(&mut sim, &mut w, "/proj/d0", move |_s, _w, r| {
            r.unwrap();
            back.set(true);
        });
    }
    sim.run(&mut w);
    assert!(back.get(), "re-admitted client's op never completed");
    {
        let inst = &w.fss[fs.0 as usize];
        assert_eq!(inst.readmissions, 1);
        assert!(inst.expelled.is_empty(), "first contact must lift the expulsion");
        assert_eq!(
            w.recovery.count(|e| matches!(e, RecoveryWhat::Readmitted { .. })),
            1
        );
        assert_eq!(inst.lease_breaks, 2, "both conflicts must have started breaks");
    }
    assert_eq!(sim.pending(), 0, "events left after the run drained");
}

/// Writeback reconciliation is exactly-once across a manager crash. The
/// surrender's bulk replay envelope is applied and WAL-logged at the
/// manager, but the reply starves (the watchdog fires first); before the
/// retry lands, the manager crashes — wiping the volatile dedup table.
/// The retry must replay every journaled op from the WAL-rebuilt table
/// rather than re-running it, and the final tree must match a fault-free
/// twin bit for bit.
#[test]
fn reconcile_replay_is_exactly_once_across_manager_crash() {
    use globalfs::gfs::{apply_fault, FaultKind};

    // Returns (tree_fingerprint, reconcile_ops, envelope retries, WAL
    // entries replayed by recovery).
    fn run(faulty: bool) -> (u64, u64, u64, u64) {
        let mut b = WorldBuilder::new(57);
        b.key_bits(384);
        let sw = b.topo().node("sw");
        let s1 = b.topo().node("nsd-1");
        let s2 = b.topo().node("nsd-2");
        let ca = b.topo().node("client-a");
        for (n, name) in [(s1, "l1"), (s2, "l2"), (ca, "la")] {
            b.topo()
                .duplex_link(n, sw, Bandwidth::gbit(1.0), SimDuration::from_micros(100), name);
        }
        let c = b.cluster("ha");
        let fs = b.filesystem(
            c,
            FsParams {
                config: FsConfig {
                    name: "hafs".into(),
                    block_size: 64 * 1024,
                    nsd_blocks: 4096,
                    nsd_count: 8,
                    data_mode: DataMode::Stored,
                },
                manager: s1,
                managers: 2,
                nsd_servers: vec![s1, s2],
                storage_nodes: vec![],
                backing: vec![NsdBacking::Ideal {
                    rate: Bandwidth::mbyte(400.0).bytes_per_sec(),
                    latency: SimDuration::from_micros(200),
                }],
                exported: false,
            },
        );
        let a = b.client(c, ca, 256);
        let (mut sim, mut w) = b.build();
        w.clients[a.0 as usize].fan_in = true;
        let sa = w.open_session(a);
        w.fss[fs.0 as usize]
            .core
            .mkdir("/proj", Owner::local(1, 1), 0)
            .unwrap();

        let done = Rc::new(Cell::new(false));
        {
            let done = done.clone();
            sa.mount(
                &mut sim,
                &mut w,
                "hafs",
                gfs_auth::handshake::AccessMode::ReadWrite,
                move |sim, w, r| {
                    r.unwrap();
                    sa.acquire_lease(sim, w, "/proj", move |sim, w, r| {
                        r.unwrap();
                        // Six mutations journal at the delegate with zero
                        // manager events.
                        let left = Rc::new(Cell::new(6u32));
                        for i in 0..6 {
                            let left = left.clone();
                            let done = done.clone();
                            sa.mkdir(
                                sim,
                                w,
                                &format!("/proj/d{i}"),
                                Owner::local(1, 1),
                                move |sim, w, r| {
                                    r.unwrap();
                                    left.set(left.get() - 1);
                                    if left.get() > 0 {
                                        return;
                                    }
                                    assert_eq!(
                                        w.clients[0].journal.len(),
                                        6,
                                        "all six mutations must be journaled before surrender"
                                    );
                                    // Starve the reconcile envelope's first
                                    // attempt: its watchdog fires before the
                                    // ~400µs round trip completes.
                                    if faulty {
                                        w.costs.request_timeout = SimDuration::from_micros(1);
                                    }
                                    let done = done.clone();
                                    sa.surrender_lease(sim, w, "/proj", move |_s, _w, r| {
                                        r.expect("surrender must survive the crash");
                                        done.set(true);
                                    });
                                    if faulty {
                                        // Heal the timeout before the ≥50ms
                                        // retry backoff expires...
                                        sim.after(SimDuration::from_millis(10), |_s, w| {
                                            w.costs.request_timeout =
                                                SimDuration::from_millis(1500);
                                        });
                                        // ...then crash the manager that
                                        // owns /proj, wiping its volatile
                                        // dedup table. The WAL survives;
                                        // recovery replays it.
                                        sim.after(SimDuration::from_millis(20), move |sim, w| {
                                            let inst = &w.fss[fs.0 as usize];
                                            let shard = inst.core.shards.shard_of("/proj");
                                            let node = inst.mgrs[shard as usize].acting;
                                            let server =
                                                if node == s1 { "nsd-1" } else { "nsd-2" };
                                            apply_fault(
                                                sim,
                                                w,
                                                FaultKind::ServerCrash {
                                                    fs,
                                                    server: server.into(),
                                                },
                                            );
                                        });
                                    }
                                },
                            );
                        }
                    });
                },
            );
        }
        sim.run(&mut w);
        assert!(done.get(), "surrender never completed (faulty={faulty})");
        assert_eq!(sim.pending(), 0, "events left after the run drained");
        let inst = &w.fss[fs.0 as usize];
        assert!(
            w.clients[a.0 as usize].journal.is_empty(),
            "reconcile must drain the delegate journal"
        );
        assert!(
            w.clients[a.0 as usize].leases.is_empty(),
            "surrender must clear the lease mirror"
        );
        let replayed = inst.mgrs.iter().map(|m| m.replayed).sum();
        (
            inst.core.tree_fingerprint(),
            inst.reconcile_ops,
            w.fanin.retries,
            replayed,
        )
    }

    let (oracle_fp, oracle_rec, _, _) = run(false);
    let (fp, rec, retries, replayed) = run(true);
    assert_eq!(oracle_rec, 6, "fault-free twin replays each journaled op once");
    assert_eq!(
        rec, 6,
        "each journaled op must execute exactly once across the crash-retry"
    );
    assert!(retries >= 1, "the starved reply must force an envelope retry");
    assert!(
        replayed >= 6,
        "recovery must rebuild the dedup table from the WAL ({replayed} replayed)"
    );
    assert_eq!(
        fp, oracle_fp,
        "crash-retry tree must match the fault-free twin"
    );
}

/// Progress-keyed fault boundaries: an event at op 0 fires before the race
/// begins (during the pre-mount advance), an event at the very last op
/// fires from the final chain step — each applied exactly once per point,
/// with the storm still draining fsck-clean.
#[test]
fn progress_plan_fires_at_op_zero_and_final_op() {
    use globalfs::gfs::faults::ProgressPlan;
    use globalfs::scenarios::metadata_storm::{run_chaos_storm, ChaosSpec, StormConfig};
    let cfg = StormConfig::small();
    let total = cfg.tree_ops() + cfg.race_ops();
    let spec = ChaosSpec {
        progress: ProgressPlan::new()
            .server_crash_at_op(0, FsId(0), "meta-srv1", Some(SimDuration::from_millis(300)))
            .link_flap_at_op(total, "storm-wan", SimDuration::from_millis(100)),
        timed: Default::default(),
        wan_clients: true,
    };
    let r = run_chaos_storm(&cfg, &spec);
    let points = u64::from(cfg.points);
    assert_eq!(
        r.faults_injected,
        2 * points,
        "both boundary events must fire exactly once per point"
    );
    assert_eq!(
        r.restores,
        2 * points,
        "both heals must fire exactly once per point"
    );
    assert!(r.fsck_clean, "boundary faults left an inconsistent filesystem");
    assert_eq!(r.gave_up, 0, "every RPC must eventually succeed");
    assert_eq!(r.invariant_violations, 0);
}

/// The manager-crash scenario above, replayed as an oracle differential:
/// the untar/build trace corpus runs through the full session stack while a
/// progress-keyed fault kills the server hosting manager shard 0 mid-trace.
/// Recovery must be *semantically* invisible — every op returns the same
/// typed result the in-memory model filesystem computes, and the final
/// trees fingerprint-identical — while the counters prove the crash, the
/// epoch bump and the WAL replay actually happened.
#[test]
fn manager_crash_replay_is_oracle_equivalent() {
    use globalfs::gfs::faults::ProgressPlan;
    use globalfs::scenarios::metadata_storm::ChaosSpec;
    use globalfs::scenarios::trace::{replay_trace, ReplayConfig, TraceCorpus};

    let ops = TraceCorpus::UntarBuild.generate(3, 2, 4242);
    let total = ops.len() as u64;
    let cfg = ReplayConfig {
        managers: 1,
        leases: false,
        replicate: false,
        per_mount: 2,
        seed: 4242,
    };
    // Shard 0 — the only manager at M=1 — lives on trace-srv0.
    let spec = ChaosSpec {
        progress: ProgressPlan::new().server_crash_at_op(
            total * 2 / 5,
            FsId(0),
            "trace-srv0",
            Some(SimDuration::from_millis(600)),
        ),
        timed: Default::default(),
        wan_clients: false,
    };
    let r = replay_trace(&ops, &cfg, &spec);
    // A crash on a manager-hosting server logs both the crash and the
    // manager-loss marker, so >= rather than == here.
    assert!(r.faults_injected >= 1, "the mid-trace manager kill never fired");
    assert!(r.restores >= 1, "the crashed server was never restored");
    assert!(r.manager_epochs >= 1, "recovery must bump the manager epoch");
    assert!(r.wal_replayed >= 1, "takeover replayed nothing from the WAL");
    assert_eq!(
        r.divergences, 0,
        "op results diverged from the oracle across the crash:\n{}",
        r.divergence_samples.join("\n")
    );
    assert!(
        r.tree_matches_oracle,
        "faulted final tree {:#x} != oracle {:#x}",
        r.tree_fingerprint, r.oracle_fingerprint
    );
    assert_eq!(r.gave_up, 0, "an op exhausted its retry budget");
    assert!(r.fsck_clean, "post-replay fsck found inconsistencies");
    assert_eq!(r.invariant_violations, 0);
}
