//! Failure injection: NSD server failover. GPFS serves each NSD through a
//! primary server with backups; when the primary dies, clients reroute.
//! The paper's production design (§5) planned exactly this redundancy
//! (dual HBAs, dual controllers per DS4100, two NSD servers per LUN).

use bytes::Bytes;
use globalfs::gfs::client;
use globalfs::gfs::fscore::{DataMode, FsConfig};
use globalfs::gfs::types::{ClientId, FsId, NsdId, OpenFlags, Owner};
use globalfs::gfs::world::{FsParams, GfsWorld, NsdBacking, WorldBuilder};
use globalfs::simcore::{Bandwidth, Sim, SimDuration};
use globalfs::simnet::NodeId;
use std::cell::Cell;
use std::rc::Rc;

/// Two NSD servers behind one switch, one client.
fn bed() -> (Sim<GfsWorld>, GfsWorld, ClientId, FsId, NodeId, NodeId) {
    let mut b = WorldBuilder::new(55);
    b.key_bits(384);
    let sw = b.topo().node("sw");
    let s1 = b.topo().node("nsd-1");
    let s2 = b.topo().node("nsd-2");
    let cli = b.topo().node("client");
    for (n, name) in [(s1, "l1"), (s2, "l2"), (cli, "lc")] {
        b.topo()
            .duplex_link(n, sw, Bandwidth::gbit(1.0), SimDuration::from_micros(100), name);
    }
    let c = b.cluster("ha");
    let fs = b.filesystem(
        c,
        FsParams {
            config: FsConfig {
                name: "hafs".into(),
                block_size: 64 * 1024,
                nsd_blocks: 4096,
                nsd_count: 8,
                data_mode: DataMode::Stored,
            },
            manager: s1,
            nsd_servers: vec![s1, s2],
            storage_nodes: vec![],
            backing: vec![NsdBacking::Ideal {
                rate: Bandwidth::mbyte(400.0).bytes_per_sec(),
                latency: SimDuration::from_micros(200),
            }],
            exported: false,
        },
    );
    let client = b.client(c, cli, 256);
    let (sim, w) = b.build();
    (sim, w, client, fs, s1, s2)
}

#[test]
fn nsds_fail_over_to_surviving_server() {
    let (mut sim, mut w, client, fs, s1, s2) = bed();
    // Before failure: NSDs split across both servers.
    let inst = &w.fss[fs.0 as usize];
    assert_eq!(inst.server_of(NsdId(0)), s1);
    assert_eq!(inst.server_of(NsdId(1)), s2);

    let ok = Rc::new(Cell::new(false));
    let ok2 = ok.clone();
    let payload = Bytes::from(vec![0x77u8; 300_000]);
    let expect = payload.clone();
    client::mount_local(&mut sim, &mut w, client, "hafs", move |sim, w, r| {
        r.unwrap();
        client::open(sim, w, client, "hafs", "/survive", OpenFlags::ReadWrite, Owner::local(1, 1), move |sim, w, r| {
            let h = r.unwrap();
            client::write(sim, w, client, h, 0, payload, move |sim, w, r| {
                r.unwrap();
                client::fsync(sim, w, client, h, move |sim, w, r| {
                    r.unwrap();
                    // Kill server 1 (also the manager's *data* role; the
                    // manager RPC endpoint survives — GPFS would elect a
                    // new fs manager, which we model as instantaneous).
                    w.fss[fs.0 as usize].fail_server(s1);
                    // Drop the cache so reads must hit the surviving server.
                    let inode = w.clients[client.0 as usize].handles[&h].inode;
                    w.clients[client.0 as usize].pool.invalidate_file(fs, inode);
                    client::read(sim, w, client, h, 0, 300_000, move |_s, w, r| {
                        let got = r.unwrap();
                        assert_eq!(got, expect, "data served through backup differs");
                        // Every NSD now routes to s2.
                        let inst = &w.fss[fs.0 as usize];
                        for i in 0..8 {
                            assert_eq!(inst.server_of(NsdId(i)), s2);
                        }
                        ok2.set(true);
                    });
                });
            });
        });
    });
    sim.run(&mut w);
    assert!(ok.get());
}

#[test]
fn restore_rebalances_service() {
    let (_sim, mut w, _client, fs, s1, s2) = bed();
    w.fss[fs.0 as usize].fail_server(s1);
    assert_eq!(w.fss[fs.0 as usize].server_of(NsdId(0)), s2);
    w.fss[fs.0 as usize].restore_server(s1);
    assert_eq!(w.fss[fs.0 as usize].server_of(NsdId(0)), s1);
}

#[test]
#[should_panic(expected = "all servers failed")]
fn total_failure_is_unavailability() {
    let (_sim, mut w, _client, fs, s1, s2) = bed();
    w.fss[fs.0 as usize].fail_server(s1);
    w.fss[fs.0 as usize].fail_server(s2);
    let _ = w.fss[fs.0 as usize].server_of(NsdId(0));
}

#[test]
fn writes_after_failover_land_and_survive_restore() {
    let (mut sim, mut w, client, fs, s1, _s2) = bed();
    let ok = Rc::new(Cell::new(false));
    let ok2 = ok.clone();
    client::mount_local(&mut sim, &mut w, client, "hafs", move |sim, w, r| {
        r.unwrap();
        // Fail the primary before any I/O.
        w.fss[fs.0 as usize].fail_server(s1);
        client::open(sim, w, client, "hafs", "/via-backup", OpenFlags::ReadWrite, Owner::local(1, 1), move |sim, w, r| {
            let h = r.unwrap();
            client::write(sim, w, client, h, 0, Bytes::from(vec![5u8; 100_000]), move |sim, w, r| {
                r.unwrap();
                client::close(sim, w, client, h, move |sim, w, r| {
                    r.unwrap();
                    // Primary comes back; data must read fine through it.
                    w.fss[fs.0 as usize].restore_server(s1);
                    client::open(sim, w, client, "hafs", "/via-backup", OpenFlags::Read, Owner::local(1, 1), move |sim, w, r| {
                        let h = r.unwrap();
                        client::read(sim, w, client, h, 0, 100_000, move |_s, _w, r| {
                            let got = r.unwrap();
                            assert!(got.iter().all(|b| *b == 5));
                            ok2.set(true);
                        });
                    });
                });
            });
        });
    });
    sim.run(&mut w);
    assert!(ok.get());
}
