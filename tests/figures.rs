//! Figure-shape regression tests: every quantitative claim the paper
//! makes, asserted end-to-end through the `scenarios` crate. These are the
//! compact versions of the `cargo bench` harnesses; they pin the *shape*
//! (who wins, by what factor, where ceilings sit), not absolute numbers.

use globalfs::scenarios::ablations::{auth_handshake, blocksize_streams, gfs_vs_gridftp, A2Config};
use globalfs::scenarios::production::{
    run_anl, run_latency_sweep, run_scaling_point, Direction, ProductionConfig,
};
use globalfs::scenarios::{deisa, sc02, sc03, sc04};
use globalfs::simcore::{SimDuration, MBYTE};

#[test]
fn fig2_sc02_sustained_720() {
    let r = sc02::run(sc02::Sc02Config::default());
    assert!((680.0..760.0).contains(&r.steady.mean), "{:.0} MB/s", r.steady.mean);
}

#[test]
fn fig5_sc03_peak_and_dip() {
    let r = sc03::run(sc03::Sc03Config::default());
    assert!((8.7..9.1).contains(&r.peak_gbs));
    assert!(r.steady_gbs > 8.0);
    assert!(r.dip_gbs < 1.0);
}

#[test]
fn fig8_sc04_aggregate_24() {
    let r = sc04::run(sc04::Sc04Config::default());
    assert!((22.0..26.0).contains(&r.aggregate_steady.mean));
    assert!(r.peak_gbs > 25.0);
    assert!((28.0..32.0).contains(&r.san_theoretical_gbyte));
    assert!((13.0..17.0).contains(&r.san_achieved_gbyte));
}

#[test]
fn fig11_read_write_asymmetry() {
    let read = run_scaling_point(ProductionConfig::default(), 64, Direction::Read);
    let write = run_scaling_point(ProductionConfig::default(), 64, Direction::Write);
    let (r, w) = (
        read.aggregate_gbyte_per_sec(),
        write.aggregate_gbyte_per_sec(),
    );
    assert!((5.5..6.3).contains(&r), "read {r:.2} GB/s");
    assert!(w < r, "write {w:.2} !< read {r:.2}");
}

#[test]
fn anl_1_2_gbyte() {
    let p = run_anl(32);
    let g = p.aggregate_gbyte_per_sec();
    assert!((1.0..1.3).contains(&g), "{g:.2} GB/s");
}

#[test]
fn deisa_network_limited() {
    let r = deisa::run(deisa::DeisaConfig::default());
    assert_eq!(r.mounts.len(), 12);
    for (_, _, mbs) in &r.io_rates {
        assert!(*mbs > 100.0 && *mbs <= r.network_limit_mbs + 1.0);
    }
}

#[test]
fn a1_latency_tolerance_depends_on_windows() {
    let deep = run_latency_sweep(&[1, 160], 16 * MBYTE);
    let shallow = run_latency_sweep(&[1, 160], 128 * 1024);
    assert!(deep[1].1 > 0.9 * deep[0].1, "deep windows must tolerate latency");
    assert!(
        shallow[1].1 < 0.2 * shallow[0].1,
        "shallow windows must collapse with latency"
    );
}

#[test]
fn a2_crossover_structure() {
    let pts = gfs_vs_gridftp(&A2Config::default(), &[0.01, 1.0]);
    // Partial access: staging is catastrophically worse.
    assert!(pts[0].gridftp_seconds / pts[0].gfs_seconds > 20.0);
    // Full access: within 2x.
    assert!(pts[1].gridftp_seconds / pts[1].gfs_seconds < 2.0);
}

#[test]
fn a3_pipelining_required_at_distance() {
    let sw = blocksize_streams(&[256 * 1024], &[8], false);
    let pl = blocksize_streams(&[256 * 1024], &[8], true);
    assert!(pl[0].mbyte_per_sec > 10.0 * sw[0].mbyte_per_sec);
}

#[test]
fn auth_handshake_is_cheap_relative_to_data() {
    let r = auth_handshake(SimDuration::from_millis(40));
    // One mount costs a handful of RTTs — negligible next to any transfer.
    assert!(r.mount_authonly_seconds < 0.5);
    assert!(r.mount_encrypt_seconds < 0.6);
}
