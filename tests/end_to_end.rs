//! Cross-crate integration: the full stack through the public facade —
//! topology building, cluster auth wiring, remote mounts, real file I/O
//! with byte fidelity, coherence under cross-site sharing.

use bytes::Bytes;
use globalfs::gfs::admin::connect_clusters;
use globalfs::gfs::client;
use globalfs::gfs::fscore::FsConfig;
use globalfs::gfs::types::{ClientId, FsError, OpenFlags, Owner};
use globalfs::gfs::world::{FsParams, GfsWorld, WorldBuilder};
use globalfs::gfs_auth::handshake::AccessMode;
use globalfs::simcore::{Bandwidth, Sim, SimDuration};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Three sites: SDSC (owner), NCSA and ANL (importers) across a WAN.
fn three_site_world() -> (Sim<GfsWorld>, GfsWorld, ClientId, ClientId, ClientId) {
    let mut b = WorldBuilder::new(101);
    b.key_bits(384);
    let sdsc = b.topo().node("sdsc");
    let hub = b.topo().node("hub");
    let ncsa = b.topo().node("ncsa");
    let anl = b.topo().node("anl");
    b.topo().duplex_link(sdsc, hub, Bandwidth::gbit(10.0), SimDuration::from_millis(2), "s");
    b.topo().duplex_link(ncsa, hub, Bandwidth::gbit(10.0), SimDuration::from_millis(28), "n");
    b.topo().duplex_link(anl, hub, Bandwidth::gbit(10.0), SimDuration::from_millis(26), "a");
    let c_sdsc = b.cluster("sdsc.teragrid");
    let c_ncsa = b.cluster("ncsa.teragrid");
    let c_anl = b.cluster("anl.teragrid");
    b.filesystem(
        c_sdsc,
        FsParams::ideal(
            FsConfig::small_test("gpfs-wan"),
            sdsc,
            vec![sdsc],
            Bandwidth::mbyte(400.0),
            SimDuration::from_micros(300),
        ),
    );
    let local = b.client(c_sdsc, sdsc, 512);
    let remote_n = b.client(c_ncsa, ncsa, 512);
    let remote_a = b.client(c_anl, anl, 512);
    let (sim, mut w) = b.build();
    connect_clusters(&mut w, c_sdsc, c_ncsa, "gpfs-wan", AccessMode::ReadWrite, sdsc);
    connect_clusters(&mut w, c_sdsc, c_anl, "gpfs-wan", AccessMode::ReadWrite, sdsc);
    (sim, w, local, remote_n, remote_a)
}

fn owner() -> Owner {
    Owner::local(500, 100)
}

#[test]
fn one_filesystem_three_administrative_domains() {
    let (mut sim, mut w, local, ncsa, anl) = three_site_world();
    let done = Rc::new(Cell::new(false));
    let d = done.clone();

    // 300 KB of patterned data (crosses several 64 KiB blocks).
    let payload: Vec<u8> = (0..300_000u32).map(|i| (i * 7 % 251) as u8).collect();
    let payload = Bytes::from(payload);
    let expect1 = payload.clone();
    let expect2 = payload.clone();

    client::mount(&mut sim, &mut w, local, "gpfs-wan", gfs_auth::handshake::AccessMode::ReadWrite, move |sim, w, r| {
        r.unwrap();
        client::open(sim, w, local, "gpfs-wan", "/enzo.out", OpenFlags::ReadWrite, owner(), move |sim, w, r| {
            let h = r.unwrap();
            client::write(sim, w, local, h, 0, payload, move |sim, w, r| {
                r.unwrap();
                client::close(sim, w, local, h, move |sim, w, r| {
                    r.unwrap();
                    // Both remote sites mount and verify the same bytes.
                    client::mount(sim, w, ncsa, "gpfs-wan", AccessMode::ReadWrite, move |sim, w, r| {
                        r.unwrap();
                        client::mount(sim, w, anl, "gpfs-wan", AccessMode::ReadWrite, move |sim, w, r| {
                            r.unwrap();
                            client::open(sim, w, ncsa, "gpfs-wan", "/enzo.out", OpenFlags::Read, owner(), move |sim, w, r| {
                                let hn = r.unwrap();
                                client::read(sim, w, ncsa, hn, 0, 300_000, move |sim, w, r| {
                                    assert_eq!(r.unwrap(), expect1);
                                    client::open(sim, w, anl, "gpfs-wan", "/enzo.out", OpenFlags::Read, owner(), move |sim, w, r| {
                                        let ha = r.unwrap();
                                        // ANL reads a slice out of the middle.
                                        client::read(sim, w, anl, ha, 100_000, 50_000, move |_s, _w, r| {
                                            let got = r.unwrap();
                                            assert_eq!(&got[..], &expect2[100_000..150_000]);
                                            d.set(true);
                                        });
                                    });
                                });
                            });
                        });
                    });
                });
            });
        });
    });
    sim.run(&mut w);
    assert!(done.get(), "three-site chain did not complete");
}

#[test]
fn cross_site_write_sharing_is_coherent() {
    // NCSA writes; ANL then reads the same region. The byte-range token
    // protocol must force NCSA's flush before ANL's read is served.
    let (mut sim, mut w, local, ncsa, anl) = three_site_world();
    let done = Rc::new(Cell::new(false));
    let d = done.clone();
    client::mount(&mut sim, &mut w, local, "gpfs-wan", gfs_auth::handshake::AccessMode::ReadWrite, move |sim, w, r| {
        r.unwrap();
        client::mount(sim, w, ncsa, "gpfs-wan", AccessMode::ReadWrite, move |sim, w, r| {
            r.unwrap();
            client::mount(sim, w, anl, "gpfs-wan", AccessMode::ReadWrite, move |sim, w, r| {
                r.unwrap();
                client::open(sim, w, ncsa, "gpfs-wan", "/shared", OpenFlags::ReadWrite, owner(), move |sim, w, r| {
                    let hn = r.unwrap();
                    client::write(sim, w, ncsa, hn, 0, Bytes::from(vec![0xEEu8; 70_000]), move |sim, w, r| {
                        r.unwrap(); // write-behind: still dirty at NCSA
                        client::open(sim, w, anl, "gpfs-wan", "/shared", OpenFlags::Read, owner(), move |sim, w, r| {
                            let ha = r.unwrap();
                            client::read(sim, w, anl, ha, 0, 70_000, move |_s, w, r| {
                                let got = r.unwrap();
                                assert!(got.iter().all(|b| *b == 0xEE), "stale data crossed sites");
                                // The serving cluster's token manager did a
                                // real revocation.
                                assert!(w.fss[0].tokens.revocations > 0);
                                d.set(true);
                            });
                        });
                    });
                });
            });
        });
    });
    sim.run(&mut w);
    assert!(done.get());
}

#[test]
fn grid_identity_ownership_travels_with_files() {
    let (mut sim, mut w, local, _ncsa, _anl) = three_site_world();
    let dn = globalfs::gfs_auth::identity::Dn::new("/C=US/O=NPACI/CN=Alice Researcher");
    let done = Rc::new(Cell::new(false));
    let d = done.clone();
    let dn2 = dn.clone();
    client::mount(&mut sim, &mut w, local, "gpfs-wan", gfs_auth::handshake::AccessMode::ReadWrite, move |sim, w, r| {
        r.unwrap();
        client::open(
            sim,
            w,
            local,
            "gpfs-wan",
            "/alice.dat",
            OpenFlags::Write,
            Owner::grid(5012, 100, dn2.clone()),
            move |sim, w, r| {
                let h = r.unwrap();
                client::close(sim, w, local, h, move |sim, w, r| {
                    r.unwrap();
                    client::stat(sim, w, local, "gpfs-wan", "/alice.dat", move |_s, _w, r| {
                        let st = r.unwrap();
                        // The DN is recorded alongside the (site-local) UID.
                        assert_eq!(st.uid, 5012);
                        assert_eq!(st.dn.as_deref(), Some("/C=US/O=NPACI/CN=Alice Researcher"));
                        d.set(true);
                    });
                });
            },
        );
    });
    sim.run(&mut w);
    assert!(done.get());
}

#[test]
fn concurrent_remote_streams_share_fairly() {
    // Both remote sites stream big reads concurrently through their own
    // 10 Gb/s site links; neither starves.
    use globalfs::gfs::stream::{gfs_stream, StreamDir};
    use globalfs::gfs::types::FsId;
    let (mut sim, mut w, _local, _n, _a) = three_site_world();
    let fs = FsId(0);
    let t_n = Rc::new(Cell::new(0u64));
    let t_a = Rc::new(Cell::new(0u64));
    let (tn, ta) = (t_n.clone(), t_a.clone());
    let bytes = 2_000_000_000u64; // 2 GB each
    gfs_stream(&mut sim, &mut w, ClientId(1), fs, bytes, StreamDir::Read, 1, move |sim, _w| {
        tn.set(sim.now().as_nanos())
    });
    gfs_stream(&mut sim, &mut w, ClientId(2), fs, bytes, StreamDir::Read, 2, move |sim, _w| {
        ta.set(sim.now().as_nanos())
    });
    sim.run(&mut w);
    let (a, b) = (t_n.get() as f64 / 1e9, t_a.get() as f64 / 1e9);
    assert!(a > 0.0 && b > 0.0);
    // Finish within 20% of each other: fair sharing.
    assert!((a - b).abs() < 0.2 * a.max(b), "unfair completion: {a}s vs {b}s");
}

#[test]
fn errors_surface_cleanly_across_the_stack() {
    let (mut sim, mut w, local, ncsa, _anl) = three_site_world();
    let checks = Rc::new(RefCell::new(Vec::new()));
    let c1 = checks.clone();
    // Reading a file that does not exist, from a remote site.
    client::mount(&mut sim, &mut w, local, "gpfs-wan", gfs_auth::handshake::AccessMode::ReadWrite, move |sim, w, r| {
        r.unwrap();
        client::mount(sim, w, ncsa, "gpfs-wan", AccessMode::ReadWrite, move |sim, w, r| {
            r.unwrap();
            client::open(sim, w, ncsa, "gpfs-wan", "/missing", OpenFlags::Read, owner(), move |sim, w, r| {
                c1.borrow_mut().push(matches!(r, Err(FsError::NotFound(_))));
                // Unlinking a non-empty directory.
                client::mkdir(sim, w, ncsa, "gpfs-wan", "/dir", owner(), move |sim, w, r| {
                    r.unwrap();
                    client::open(sim, w, ncsa, "gpfs-wan", "/dir/f", OpenFlags::Write, owner(), move |sim, w, r| {
                        let h = r.unwrap();
                        client::close(sim, w, ncsa, h, move |sim, w, r| {
                            r.unwrap();
                            client::unlink(sim, w, ncsa, "gpfs-wan", "/dir", move |_s, w, r| {
                                let _ = w;
                                assert!(matches!(r, Err(FsError::NotEmpty(_))));
                            });
                        });
                    });
                });
            });
        });
    });
    sim.run(&mut w);
    assert_eq!(&*checks.borrow(), &[true]);
}
