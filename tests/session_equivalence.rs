//! Equivalence suite for the session-facade redesign: the flyweight
//! session layer must be a *zero-cost* re-skinning of the legacy per-client
//! paths. Every constant here was captured by running the pre-session code
//! (free `client::*` functions, `mount_local`, panicking `server_of`) and
//! is asserted against the session-driven implementation — same ops, same
//! error mix, same executed-event count, same order-sensitive result
//! fingerprint, same final namespace.

use globalfs::scenarios::chaos::check_manager_recovery;
use globalfs::scenarios::metadata_storm::{run_storm, StormConfig, StormMix};
use globalfs::simcore::SimDuration;

#[test]
fn small_uniform_storm_matches_presession_baseline() {
    let r = run_storm(&StormConfig::small());
    assert_eq!(r.ops, 1448);
    assert_eq!(r.errors, 36);
    assert_eq!(r.events, 2221, "event stream diverged from legacy client path");
    assert_eq!(r.fingerprint, 6244929630924847690);
    assert_eq!(r.tree_fingerprint, 12469937407274218023);
    assert_eq!(r.resolves, 1480);
    assert_eq!(r.interned_names, 108);
    assert_eq!(r.dentry_hits, 393);
    assert_eq!(r.dentry_misses, 479);
    // Legacy 1:1 sessions never batch.
    assert_eq!(r.envelopes, 0);
    assert_eq!(r.sessions, 16);
}

#[test]
fn small_trace_storm_matches_presession_baseline() {
    let r = run_storm(&StormConfig::small().with_mix(StormMix::Trace));
    assert_eq!(r.ops, 1448);
    assert_eq!(r.errors, 18);
    assert_eq!(r.events, 1878);
    assert_eq!(r.fingerprint, 6030439309734862832);
    assert_eq!(r.tree_fingerprint, 2046583305604562524);
}

#[test]
fn thirty_two_client_storm_matches_presession_baseline() {
    let cfg = StormConfig {
        points: 1,
        clients_per_point: 32,
        sessions_per_client: 1,
        top_dirs: 4,
        sub_dirs: 4,
        files_per_sub: 32,
        ops_per_client: 24,
        managers: 1,
        write_bytes: 4096,
        mix: StormMix::Uniform,
        seed: 2005,
        lease_contexts: 0,
        rebalance_every_ms: 0,
    };
    let r = run_storm(&cfg);
    assert_eq!(r.ops, 1300);
    assert_eq!(r.errors, 75);
    assert_eq!(r.events, 4713);
    assert_eq!(r.fingerprint, 5521886145567288686);
    assert_eq!(r.tree_fingerprint, 5130660943358764152);
}

#[test]
fn manager_recovery_is_byte_identical_to_presession_baseline() {
    // Chaos run: manager crash at 50% with a 600 ms outage, then the
    // fault-free oracle. Both fingerprints — and the exactly-once
    // tree-fingerprint match between them — were frozen pre-refactor.
    let v = check_manager_recovery(&StormConfig::small(), 0.5, SimDuration::from_millis(600));
    assert!(v.violations.is_empty(), "violations: {:?}", v.violations);
    assert_eq!(v.chaos.fingerprint, 336730383921503352);
    assert_eq!(v.chaos.tree_fingerprint, 6762044656801413376);
    assert_eq!(v.chaos.ops, 1112);
    assert_eq!(v.chaos.errors, 4);
    assert_eq!(v.chaos.events, 285);
    assert_eq!(v.oracle.fingerprint, v.chaos.fingerprint);
    assert_eq!(v.oracle.tree_fingerprint, v.chaos.tree_fingerprint);
    assert_eq!(v.oracle.events, 275);
}
