//! Property-based tests over the core data structures and invariants,
//! exercised from outside the crates through the public API.

use bytes::Bytes;
use globalfs::gfs::fscore::{DataMode, FsConfig, FsCore};
use globalfs::gfs::tokens::{ByteRange, TokenManager, TokenMode};
use globalfs::gfs::types::{ClientId, InodeId, Owner};
use globalfs::gfs_auth::bigint::BigUint;
use globalfs::gfs_auth::{sha256, StreamCipher};
use globalfs::simcore::{RateSeries, SimDuration, SimTime};
use globalfs::simnet::fairshare::{allocate, SolverFlow};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// BigUint: algebraic laws against u128 reference arithmetic
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn bigint_add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = BigUint::from_u64(a).add(&BigUint::from_u64(b));
        let expect = a as u128 + b as u128;
        let got = BigUint::from_be_bytes(&expect.to_be_bytes());
        prop_assert_eq!(sum, got);
    }

    #[test]
    fn bigint_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
        let expect = a as u128 * b as u128;
        prop_assert_eq!(prod, BigUint::from_be_bytes(&expect.to_be_bytes()));
    }

    #[test]
    fn bigint_divrem_identity(a in any::<u64>(), b in 1u64..) {
        let (q, r) = BigUint::from_u64(a).div_rem(&BigUint::from_u64(b));
        prop_assert_eq!(q.to_u64().unwrap(), a / b);
        prop_assert_eq!(r.to_u64().unwrap(), a % b);
    }

    #[test]
    fn bigint_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let x = BigUint::from_be_bytes(&bytes);
        let back = x.to_be_bytes();
        // Leading zeros are canonicalized away; values must agree.
        prop_assert_eq!(BigUint::from_be_bytes(&back), x);
    }

    #[test]
    fn bigint_modpow_matches_reference(base in any::<u32>(), exp in 0u32..64, m in 2u64..1_000_000) {
        let got = BigUint::from_u64(base as u64)
            .modpow(&BigUint::from_u64(exp as u64), &BigUint::from_u64(m));
        // Reference: square-and-multiply over u128.
        let mut acc: u128 = 1;
        let mut b = base as u128 % m as u128;
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 { acc = acc * b % m as u128; }
            b = b * b % m as u128;
            e >>= 1;
        }
        prop_assert_eq!(got.to_u64().unwrap() as u128, acc);
    }
}

// ---------------------------------------------------------------------
// Crypto: roundtrips
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn cipher_roundtrips_any_payload(key in proptest::collection::vec(any::<u8>(), 1..64),
                                     msg in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let mut enc = StreamCipher::new(&key);
        let ct = enc.process(&msg);
        let mut dec = StreamCipher::new(&key);
        prop_assert_eq!(dec.process(&ct), msg);
    }

    #[test]
    fn sha256_is_deterministic_and_sensitive(msg in proptest::collection::vec(any::<u8>(), 1..1024), flip in 0usize..1024) {
        let d1 = sha256(&msg);
        prop_assert_eq!(d1, sha256(&msg));
        let mut tampered = msg.clone();
        let i = flip % tampered.len();
        tampered[i] ^= 1;
        prop_assert_ne!(d1, sha256(&tampered));
    }
}

// ---------------------------------------------------------------------
// Max-min fairness: feasibility and work conservation
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn fairshare_is_feasible_and_conserving(
        caps in proptest::collection::vec(1.0f64..1e9, 1..12),
        paths in proptest::collection::vec(proptest::collection::vec(any::<u16>(), 1..4), 1..24),
        capped in proptest::collection::vec(proptest::option::of(1.0f64..1e8), 1..24),
    ) {
        let nl = caps.len() as u16;
        // A physical path never crosses the same directed link twice:
        // deduplicate globally, preserving order.
        let paths: Vec<Vec<u32>> = paths.iter().map(|p| {
            let mut seen = std::collections::HashSet::new();
            p.iter()
                .map(|x| u32::from(x % nl))
                .filter(|l| seen.insert(*l))
                .collect()
        }).collect();
        let flows: Vec<SolverFlow> = paths.iter().zip(capped.iter().cycle()).map(|(p, c)| SolverFlow {
            path: p,
            cap: c.unwrap_or(f64::INFINITY),
        }).collect();
        let rates = allocate(&caps, &flows);
        prop_assert_eq!(rates.len(), flows.len());
        // 1. No link exceeds capacity.
        for (l, &cap) in caps.iter().enumerate() {
            let used: f64 = flows.iter().zip(&rates)
                .filter(|(f, _)| f.path.contains(&(l as u32)))
                .map(|(_, r)| *r).sum();
            prop_assert!(used <= cap * (1.0 + 1e-6), "link {} used {} > cap {}", l, used, cap);
        }
        // 2. No flow exceeds its own cap.
        for (f, r) in flows.iter().zip(&rates) {
            prop_assert!(*r <= f.cap * (1.0 + 1e-6));
        }
        // 3. Every flow gets a strictly positive rate (no starvation).
        for r in &rates {
            prop_assert!(*r > 0.0);
        }
        // 4. Work conservation: each flow is limited by a saturated link
        //    or by its own cap.
        for (f, r) in flows.iter().zip(&rates) {
            let capped_by_self = *r >= f.cap * (1.0 - 1e-6);
            let capped_by_link = f.path.iter().any(|&l| {
                let used: f64 = flows.iter().zip(&rates)
                    .filter(|(g, _)| g.path.contains(&l))
                    .map(|(_, r)| *r).sum();
                used >= caps[l as usize] * (1.0 - 1e-6)
            });
            prop_assert!(capped_by_self || capped_by_link,
                "flow with rate {} is not limited by anything", r);
        }
    }
}

// ---------------------------------------------------------------------
// Token manager: exclusion invariant under random workloads
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn tokens_never_grant_conflicts(ops in proptest::collection::vec(
        (0u32..6, 0u64..1000, 1u64..200, any::<bool>(), any::<bool>()), 1..80)) {
        let mut tm = TokenManager::new();
        let ino = InodeId(1);
        for (client, start, len, write, release) in ops {
            let c = ClientId(client);
            if release {
                tm.release_all(ino, c);
                continue;
            }
            let mode = if write { TokenMode::Write } else { TokenMode::Read };
            tm.acquire(ino, c, ByteRange::new(start, start + len), mode);
            // Invariant: among current grants, no write range overlaps any
            // other client's range.
            let grants = tm.grants(ino);
            for (i, g1) in grants.iter().enumerate() {
                for g2 in grants.iter().skip(i + 1) {
                    if g1.client == g2.client { continue; }
                    let overlap = g1.range.overlaps(&g2.range);
                    let conflicting = g1.mode == TokenMode::Write || g2.mode == TokenMode::Write;
                    prop_assert!(!(overlap && conflicting),
                        "conflicting grants coexist: {:?} vs {:?}", g1, g2);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// FsCore: random writes against an in-memory reference model
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn fscore_block_data_matches_model(writes in proptest::collection::vec(
        (0u64..32, any::<u8>()), 1..60)) {
        let mut fs = FsCore::create(FsConfig {
            name: "prop".into(),
            block_size: 4096,
            nsd_blocks: 64,
            nsd_count: 4,
            data_mode: DataMode::Stored,
        });
        let ino = fs.create_file("/f", Owner::local(1, 1), 0).unwrap();
        let mut model: std::collections::HashMap<u64, u8> = Default::default();
        for (block, fill) in writes {
            let addr = fs.ensure_block(ino, block).unwrap();
            fs.put_block_data(addr, Bytes::from(vec![fill; 4096]));
            fs.note_write(ino, block * 4096, 4096, 1).unwrap();
            model.insert(block, fill);
        }
        // Every model block reads back exactly.
        for (block, fill) in &model {
            let map = fs.block_map(ino, block * 4096, 1).unwrap();
            let addr = map[0].1.expect("written block has an address");
            let data = fs.get_block_data(addr);
            prop_assert!(data.iter().all(|b| b == fill));
        }
        // Size is the max written extent.
        let max_block = model.keys().max().unwrap();
        prop_assert_eq!(fs.stat("/f").unwrap().size, (max_block + 1) * 4096);
        // No two blocks share a physical address.
        let mut addrs = std::collections::HashSet::new();
        for block in model.keys() {
            let map = fs.block_map(ino, block * 4096, 1).unwrap();
            prop_assert!(addrs.insert(map[0].1.unwrap()), "duplicate physical address");
        }
    }
}

// ---------------------------------------------------------------------
// RateSeries: byte conservation under arbitrary recordings
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn rate_series_conserves_bytes(events in proptest::collection::vec(
        (0u64..100_000, 1u64..1_000_000), 1..100)) {
        let mut sorted = events.clone();
        sorted.sort();
        let mut rs = RateSeries::new("prop", SimDuration::from_millis(10));
        let mut total = 0u64;
        for (t_us, bytes) in &sorted {
            rs.record(SimTime::from_micros(*t_us), *bytes);
            total += bytes;
        }
        prop_assert_eq!(rs.total_bytes(), total);
        // Integrating the series recovers the total (each window's rate ×
        // its span).
        let end = SimTime::from_micros(sorted.last().unwrap().0 + 1);
        let series = rs.finish(end);
        let mut prev = SimTime::ZERO;
        let mut integrated = 0.0;
        for p in &series.points {
            integrated += p.value * p.t.since(prev).as_secs_f64();
            prev = p.t;
        }
        let err = (integrated - total as f64).abs() / total as f64;
        prop_assert!(err < 1e-6, "integrated {} vs total {}", integrated, total);
    }
}
