//! Randomized-but-deterministic tests over the core data structures and
//! invariants, exercised from outside the crates through the public API.
//!
//! These were property-based tests; in the hermetic build they run the same
//! invariant checks over seeded `StdRng` case generators, so every CI run
//! exercises an identical (but broad) case set.

use bytes::Bytes;
use globalfs::gfs::fscore::{DataMode, FsConfig, FsCore};
use globalfs::gfs::tokens::{ByteRange, TokenManager, TokenMode};
use globalfs::gfs::types::{ClientId, InodeId, Owner};
use globalfs::gfs_auth::bigint::BigUint;
use globalfs::gfs_auth::{sha256, StreamCipher};
use globalfs::simcore::{RateSeries, SimDuration, SimTime};
use globalfs::simnet::fairshare::{allocate, SolverFlow};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

// ---------------------------------------------------------------------
// BigUint: algebraic laws against u128 reference arithmetic
// ---------------------------------------------------------------------

#[test]
fn bigint_add_matches_u128() {
    let mut r = rng(0xadd);
    for _ in 0..256 {
        let (a, b): (u64, u64) = (r.gen(), r.gen());
        let sum = BigUint::from_u64(a).add(&BigUint::from_u64(b));
        let expect = a as u128 + b as u128;
        assert_eq!(sum, BigUint::from_be_bytes(&expect.to_be_bytes()));
    }
}

#[test]
fn bigint_mul_matches_u128() {
    let mut r = rng(0xa11);
    for _ in 0..256 {
        let (a, b): (u64, u64) = (r.gen(), r.gen());
        let prod = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
        let expect = a as u128 * b as u128;
        assert_eq!(prod, BigUint::from_be_bytes(&expect.to_be_bytes()));
    }
}

#[test]
fn bigint_divrem_identity() {
    let mut r = rng(0xd1f);
    for _ in 0..256 {
        let a: u64 = r.gen();
        let b = r.gen_range(1u64..=u64::MAX);
        let (q, rem) = BigUint::from_u64(a).div_rem(&BigUint::from_u64(b));
        assert_eq!(q.to_u64().unwrap(), a / b);
        assert_eq!(rem.to_u64().unwrap(), a % b);
    }
}

#[test]
fn bigint_bytes_roundtrip() {
    let mut r = rng(0xb17e);
    for len in 0..64usize {
        let mut bytes = vec![0u8; len];
        r.fill(&mut bytes);
        let x = BigUint::from_be_bytes(&bytes);
        let back = x.to_be_bytes();
        // Leading zeros are canonicalized away; values must agree.
        assert_eq!(BigUint::from_be_bytes(&back), x);
    }
}

#[test]
fn bigint_modpow_matches_reference() {
    let mut r = rng(0x90d);
    for _ in 0..128 {
        let base: u32 = r.gen();
        let exp = r.gen_range(0u64..=63);
        let m = r.gen_range(2u64..=1_000_000);
        let got = BigUint::from_u64(base as u64)
            .modpow(&BigUint::from_u64(exp), &BigUint::from_u64(m));
        // Reference: square-and-multiply over u128.
        let mut acc: u128 = 1;
        let mut b = base as u128 % m as u128;
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * b % m as u128;
            }
            b = b * b % m as u128;
            e >>= 1;
        }
        assert_eq!(got.to_u64().unwrap() as u128, acc);
    }
}

// ---------------------------------------------------------------------
// Crypto: roundtrips
// ---------------------------------------------------------------------

#[test]
fn cipher_roundtrips_any_payload() {
    let mut r = rng(0xc1f);
    for _ in 0..16 {
        let key_len = r.gen_range(1usize..=63);
        let msg_len = r.gen_range(0usize..=4095);
        let mut key = vec![0u8; key_len];
        let mut msg = vec![0u8; msg_len];
        r.fill(&mut key);
        r.fill(&mut msg);
        let mut enc = StreamCipher::new(&key);
        let ct = enc.process(&msg);
        let mut dec = StreamCipher::new(&key);
        assert_eq!(dec.process(&ct), msg);
    }
}

#[test]
fn sha256_is_deterministic_and_sensitive() {
    let mut r = rng(0x5a);
    for _ in 0..16 {
        let len = r.gen_range(1usize..=1023);
        let mut msg = vec![0u8; len];
        r.fill(&mut msg);
        let d1 = sha256(&msg);
        assert_eq!(d1, sha256(&msg));
        let mut tampered = msg.clone();
        let i = r.gen_range(0usize..=len - 1);
        tampered[i] ^= 1;
        assert_ne!(d1, sha256(&tampered));
    }
}

// ---------------------------------------------------------------------
// Max-min fairness: feasibility and work conservation
// ---------------------------------------------------------------------

#[test]
fn fairshare_is_feasible_and_conserving() {
    let mut r = rng(0xfa17);
    for _case in 0..64 {
        let nl = r.gen_range(1usize..=11);
        let caps: Vec<f64> = (0..nl).map(|_| r.gen_range(1.0f64..=1e9)).collect();
        let nf = r.gen_range(1usize..=23);
        // A physical path never crosses the same directed link twice:
        // draw a few links per flow and deduplicate, preserving order.
        let paths: Vec<Vec<u32>> = (0..nf)
            .map(|_| {
                let hops = r.gen_range(1usize..=3);
                let mut seen = std::collections::HashSet::new();
                (0..hops)
                    .map(|_| r.gen_range(0u64..=(nl as u64 - 1)) as u32)
                    .filter(|l| seen.insert(*l))
                    .collect()
            })
            .collect();
        let flows: Vec<SolverFlow> = paths
            .iter()
            .map(|p| SolverFlow {
                path: p,
                cap: if r.gen::<f64>() < 0.5 {
                    r.gen_range(1.0f64..=1e8)
                } else {
                    f64::INFINITY
                },
            })
            .collect();
        let rates = allocate(&caps, &flows);
        assert_eq!(rates.len(), flows.len());
        // 1. No link exceeds capacity.
        for (l, &cap) in caps.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.path.contains(&(l as u32)))
                .map(|(_, r)| *r)
                .sum();
            assert!(used <= cap * (1.0 + 1e-6), "link {l} used {used} > cap {cap}");
        }
        // 2. No flow exceeds its own cap.
        for (f, rate) in flows.iter().zip(&rates) {
            assert!(*rate <= f.cap * (1.0 + 1e-6));
        }
        // 3. Every flow gets a strictly positive rate (no starvation).
        for rate in &rates {
            assert!(*rate > 0.0);
        }
        // 4. Work conservation: each flow is limited by a saturated link
        //    or by its own cap.
        for (f, rate) in flows.iter().zip(&rates) {
            let capped_by_self = *rate >= f.cap * (1.0 - 1e-6);
            let capped_by_link = f.path.iter().any(|&l| {
                let used: f64 = flows
                    .iter()
                    .zip(&rates)
                    .filter(|(g, _)| g.path.contains(&l))
                    .map(|(_, r)| *r)
                    .sum();
                used >= caps[l as usize] * (1.0 - 1e-6)
            });
            assert!(
                capped_by_self || capped_by_link,
                "flow with rate {rate} is not limited by anything"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Incremental network engine vs. batch solver: bit-for-bit agreement
// ---------------------------------------------------------------------

mod netprop {
    use globalfs::simcore::{Bandwidth, Sim, SimDuration, SimTime};
    use globalfs::simnet::fairshare::{allocate, SolverFlow};
    use globalfs::simnet::{FlowId, FlowSpec, NetWorld, Network, NodeId, TopologyBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct World {
        net: Network<World>,
    }
    impl NetWorld for World {
        fn net(&mut self) -> &mut Network<World> {
            &mut self.net
        }
    }

    /// One pre-generated mutation (flows are referenced by start order).
    enum Op {
        Start { slot: usize, src: NodeId, dst: NodeId, bytes: u64, window: Option<u64> },
        Cancel { slot: usize },
        Degrade { link: u32, factor: f64 },
        SetUp { link: u32, up: bool },
    }

    /// The live `Network` re-solves incrementally — dirty components only,
    /// fast paths that skip the solver, same-instant batching. A fresh
    /// global [`allocate`] over the identical flow set must produce the
    /// exact same bits for every active flow, at every probe instant; any
    /// float divergence between the two code paths fails here.
    #[test]
    fn incremental_rates_match_batch_solver_bitwise() {
        for case in 0u64..24 {
            let mut r = StdRng::seed_from_u64(0x1ec0 + case);

            // Random hub-chain topology: unique routes, shared trunks.
            let mut b = TopologyBuilder::new();
            let n_hubs = r.gen_range(1usize..=4);
            let hubs: Vec<NodeId> = (0..n_hubs).map(|i| b.node(format!("h{i}"))).collect();
            for i in 1..n_hubs {
                b.duplex_link(
                    hubs[i - 1],
                    hubs[i],
                    Bandwidth::gbit(r.gen_range(1.0f64..=10.0)),
                    SimDuration::from_millis(r.gen_range(1u64..=20)),
                    format!("trunk{i}"),
                );
            }
            let n_leaves = r.gen_range(2usize..=10);
            let leaves: Vec<NodeId> = (0..n_leaves)
                .map(|i| {
                    let leaf = b.node(format!("n{i}"));
                    let hub = hubs[r.gen_range(0usize..=n_hubs - 1)];
                    b.duplex_link(
                        leaf,
                        hub,
                        Bandwidth::gbit(r.gen_range(0.2f64..=5.0)),
                        SimDuration::from_millis(r.gen_range(1u64..=10)),
                        format!("edge{i}"),
                    );
                    leaf
                })
                .collect();
            let topo = b.build();
            let n_links = topo.link_count() as u32;

            // Pre-generate bursts of same-instant mutations (the batching
            // path) with a probe shortly after each burst.
            let mut plan: Vec<(u64, Vec<Op>)> = Vec::new();
            let mut slots = 0usize;
            let n_bursts = r.gen_range(4usize..=10);
            for k in 0..n_bursts {
                let t_us = (k as u64 + 1) * 50_000 + r.gen_range(0u64..=9_999);
                let mut ops = Vec::new();
                for _ in 0..r.gen_range(1usize..=3) {
                    match r.gen_range(0u64..=9) {
                        0..=5 => {
                            let src = leaves[r.gen_range(0usize..=n_leaves - 1)];
                            let mut dst = src;
                            while dst == src {
                                dst = leaves[r.gen_range(0usize..=n_leaves - 1)];
                            }
                            ops.push(Op::Start {
                                slot: slots,
                                src,
                                dst,
                                bytes: r.gen_range(1u64..=200) * 1_000_000,
                                window: if r.gen::<f64>() < 0.3 {
                                    Some(r.gen_range(64u64..=4096) * 1024)
                                } else {
                                    None
                                },
                            });
                            slots += 1;
                        }
                        6..=7 if slots > 0 => ops.push(Op::Cancel {
                            slot: r.gen_range(0usize..=slots - 1),
                        }),
                        8 => ops.push(Op::Degrade {
                            link: r.gen_range(0u64..=u64::from(n_links) - 1) as u32,
                            factor: r.gen_range(0.1f64..=1.0),
                        }),
                        _ => ops.push(Op::SetUp {
                            link: r.gen_range(0u64..=u64::from(n_links) - 1) as u32,
                            up: r.gen::<f64>() < 0.7,
                        }),
                    }
                }
                plan.push((t_us, ops));
            }

            let mut sim: Sim<World> = Sim::new();
            let mut w = World {
                net: Network::new(topo, case),
            };
            // Started flows by slot: (id, src, dst, window).
            type Started = Vec<(FlowId, NodeId, NodeId, Option<u64>)>;
            let started: Rc<RefCell<Started>> = Rc::new(RefCell::new(Vec::new()));

            for (t_us, ops) in plan {
                let at = SimTime::from_micros(t_us);
                for op in ops {
                    let started = started.clone();
                    match op {
                        Op::Start { slot, src, dst, bytes, window } => {
                            sim.at(at, move |sim, w| {
                                let mut spec = FlowSpec::bulk(src, dst, bytes);
                                if let Some(wnd) = window {
                                    spec = spec.with_window(wnd);
                                }
                                let id = Network::start_flow(sim, w, spec, |_s, _w| {});
                                let mut s = started.borrow_mut();
                                debug_assert_eq!(s.len(), slot);
                                s.push((id, src, dst, window));
                            });
                        }
                        Op::Cancel { slot } => {
                            sim.at(at, move |sim, w| {
                                if let Some(&(id, ..)) = started.borrow().get(slot) {
                                    Network::cancel_flow(sim, w, id);
                                }
                            });
                        }
                        Op::Degrade { link, factor } => {
                            sim.at(at, move |sim, w| {
                                Network::set_link_degraded(
                                    sim,
                                    w,
                                    globalfs::simnet::LinkId(link),
                                    factor,
                                );
                            });
                        }
                        Op::SetUp { link, up } => {
                            sim.at(at, move |sim, w| {
                                Network::set_link_up(sim, w, globalfs::simnet::LinkId(link), up);
                            });
                        }
                    }
                }
                // Probe strictly after the burst's end-of-instant solve.
                let started = started.clone();
                sim.at(at + SimDuration::from_micros(500), move |_sim, w| {
                    check_against_batch(case, &started.borrow(), &mut w.net);
                });
            }
            sim.run(&mut w);
        }
    }

    /// Rebuild the active flow set from scratch (paths, window caps,
    /// effective link capacities) and demand bitwise rate agreement with
    /// the live engine.
    fn check_against_batch(case: u64, started: &[(FlowId, NodeId, NodeId, Option<u64>)], net: &mut Network<World>) {
        let caps: Vec<f64> = (0..net.topo().link_count())
            .map(|i| {
                let l = globalfs::simnet::LinkId(i as u32);
                if net.link_is_up(l) {
                    net.topo().links()[i].capacity * net.link_degrade(l)
                } else {
                    0.0
                }
            })
            .collect();
        // Active flows in id (= insertion) order, matching the engine's
        // own packing order.
        let mut live: Vec<(FlowId, Vec<u32>, f64)> = Vec::new();
        for &(id, src, dst, window) in started {
            if net.flow_rate(id).is_none() {
                continue;
            }
            let path = net.topo().route(src, dst).expect("routed at start");
            let cap = match window {
                Some(wnd) => {
                    // Exactly the engine's window-cap arithmetic.
                    let fwd = net.topo().path_delay(&path);
                    let back = net
                        .topo()
                        .route(dst, src)
                        .map(|p| net.topo().path_delay(&p))
                        .unwrap_or(fwd);
                    wnd as f64 / (fwd + back).as_secs_f64().max(1e-9)
                }
                None => f64::INFINITY,
            };
            live.push((id, path.iter().map(|l| l.0).collect(), cap));
        }
        let flows: Vec<SolverFlow> = live
            .iter()
            .map(|(_, p, cap)| SolverFlow { path: p, cap: *cap })
            .collect();
        let want = allocate(&caps, &flows);
        for ((id, _, _), want) in live.iter().zip(&want) {
            let got = net.flow_rate(*id).expect("still active");
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "case {case}: flow {id:?} incremental rate {got} != batch rate {want}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Token manager: exclusion invariant under random workloads
// ---------------------------------------------------------------------

#[test]
fn tokens_never_grant_conflicts() {
    let mut r = rng(0x70c);
    for _case in 0..64 {
        let mut tm = TokenManager::new();
        let ino = InodeId(1);
        let ops = r.gen_range(1usize..=79);
        for _ in 0..ops {
            let c = ClientId(r.gen_range(0u64..=5) as u32);
            if r.gen::<f64>() < 0.5 {
                tm.release_all(ino, c);
                continue;
            }
            let start = r.gen_range(0u64..=999);
            let len = r.gen_range(1u64..=199);
            let mode = if r.gen::<f64>() < 0.5 {
                TokenMode::Write
            } else {
                TokenMode::Read
            };
            tm.acquire(ino, c, ByteRange::new(start, start + len), mode);
            // Invariant: among current grants, no write range overlaps any
            // other client's range.
            let grants = tm.grants(ino);
            for (i, g1) in grants.iter().enumerate() {
                for g2 in grants.iter().skip(i + 1) {
                    if g1.client == g2.client {
                        continue;
                    }
                    let overlap = g1.range.overlaps(&g2.range);
                    let conflicting =
                        g1.mode == TokenMode::Write || g2.mode == TokenMode::Write;
                    assert!(
                        !(overlap && conflicting),
                        "conflicting grants coexist: {g1:?} vs {g2:?}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// FsCore: random writes against an in-memory reference model
// ---------------------------------------------------------------------

#[test]
fn fscore_block_data_matches_model() {
    let mut r = rng(0xf5c);
    for _case in 0..32 {
        let mut fs = FsCore::create(FsConfig {
            name: "prop".into(),
            block_size: 4096,
            nsd_blocks: 64,
            nsd_count: 4,
            data_mode: DataMode::Stored,
        });
        let ino = fs.create_file("/f", Owner::local(1, 1), 0).unwrap();
        let mut model: std::collections::HashMap<u64, u8> = Default::default();
        let writes = r.gen_range(1usize..=59);
        for _ in 0..writes {
            let block = r.gen_range(0u64..=31);
            let fill = r.gen_range(0u64..=255) as u8;
            let addr = fs.ensure_block(ino, block).unwrap();
            fs.put_block_data(addr, Bytes::from(vec![fill; 4096]));
            fs.note_write(ino, block * 4096, 4096, 1).unwrap();
            model.insert(block, fill);
        }
        // Every model block reads back exactly.
        for (block, fill) in &model {
            let map = fs.block_map(ino, block * 4096, 1).unwrap();
            let addr = map[0].1.expect("written block has an address");
            let data = fs.get_block_data(addr);
            assert!(data.iter().all(|b| b == fill));
        }
        // Size is the max written extent.
        let max_block = model.keys().max().unwrap();
        assert_eq!(fs.stat("/f").unwrap().size, (max_block + 1) * 4096);
        // No two blocks share a physical address.
        let mut addrs = std::collections::HashSet::new();
        for block in model.keys() {
            let map = fs.block_map(ino, block * 4096, 1).unwrap();
            assert!(addrs.insert(map[0].1.unwrap()), "duplicate physical address");
        }
    }
}

// ---------------------------------------------------------------------
// RateSeries: byte conservation under arbitrary recordings
// ---------------------------------------------------------------------

#[test]
fn rate_series_conserves_bytes() {
    let mut r = rng(0x5e12);
    for _case in 0..32 {
        let n = r.gen_range(1usize..=99);
        let mut events: Vec<(u64, u64)> = (0..n)
            .map(|_| (r.gen_range(0u64..=99_999), r.gen_range(1u64..=999_999)))
            .collect();
        events.sort();
        let mut rs = RateSeries::new("prop", SimDuration::from_millis(10));
        let mut total = 0u64;
        for (t_us, bytes) in &events {
            rs.record(SimTime::from_micros(*t_us), *bytes);
            total += bytes;
        }
        assert_eq!(rs.total_bytes(), total);
        // Integrating the series recovers the total (each window's rate ×
        // its span).
        let end = SimTime::from_micros(events.last().unwrap().0 + 1);
        let series = rs.finish(end);
        let mut prev = SimTime::ZERO;
        let mut integrated = 0.0;
        for p in &series.points {
            integrated += p.value * p.t.since(prev).as_secs_f64();
            prev = p.t;
        }
        let err = (integrated - total as f64).abs() / total as f64;
        assert!(err < 1e-6, "integrated {integrated} vs total {total}");
    }
}
