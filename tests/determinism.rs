//! Reproducibility: identical seeds and configurations yield bit-identical
//! results across the whole stack — the property that makes every number
//! in EXPERIMENTS.md re-derivable.

use globalfs::scenarios::{production, recovery, sc02, sc04};
use globalfs::simcore::SimDuration;

#[test]
fn sc02_series_bit_identical() {
    let a = sc02::run(sc02::Sc02Config::default());
    let b = sc02::run(sc02::Sc02Config::default());
    assert_eq!(a.series.points, b.series.points);
    assert_eq!(a.steady, b.steady);
}

#[test]
fn sc04_series_bit_identical() {
    let a = sc04::run(sc04::Sc04Config::default());
    let b = sc04::run(sc04::Sc04Config::default());
    assert_eq!(a.aggregate.points, b.aggregate.points);
    for (x, y) in a.link_series.iter().zip(&b.link_series) {
        assert_eq!(x.points, y.points);
    }
}

#[test]
fn production_points_bit_identical() {
    let a = production::run_scaling_point(
        production::ProductionConfig::default(),
        16,
        production::Direction::Read,
    );
    let b = production::run_scaling_point(
        production::ProductionConfig::default(),
        16,
        production::Direction::Read,
    );
    assert_eq!(a.seconds.to_bits(), b.seconds.to_bits());
}

/// The full Fig. 11 sweep (the perf harness's headline workload): every
/// point's makespan, byte count and event count must reproduce exactly.
#[test]
fn fig11_sweep_bit_identical() {
    let cfg = production::ProductionConfig::default();
    let counts = [1u32, 4, 16, 64, 128];
    let a = production::run_fig11(&cfg, &counts);
    let b = production::run_fig11(&cfg, &counts);
    assert_eq!(a.len(), b.len());
    for ((ra, wa), (rb, wb)) in a.iter().zip(&b) {
        assert_eq!(ra.seconds.to_bits(), rb.seconds.to_bits());
        assert_eq!(wa.seconds.to_bits(), wb.seconds.to_bits());
        assert_eq!((ra.bytes, ra.events), (rb.bytes, rb.events));
        assert_eq!((wa.bytes, wa.events), (wb.bytes, wb.events));
    }
}

#[test]
fn sc04_event_count_bit_identical() {
    let a = sc04::run(sc04::Sc04Config::default());
    let b = sc04::run(sc04::Sc04Config::default());
    assert_eq!(a.events, b.events);
    assert_eq!(a.peak_gbs.to_bits(), b.peak_gbs.to_bits());
}

/// The recovery scenarios run fault injection, timeout/retry and failover —
/// the paths most entangled with the incremental solver and cancellable
/// timers — and must still replay bit-for-bit.
#[test]
fn recovery_scenarios_bit_identical() {
    let a = recovery::crash_one_of_n(&recovery::CrashConfig::default());
    let b = recovery::crash_one_of_n(&recovery::CrashConfig::default());
    assert_eq!(a.client_series.points, b.client_series.points);
    assert_eq!(a.finish, b.finish);
    assert_eq!(a.events, b.events);

    let outage = SimDuration::from_secs(5);
    let fa = recovery::link_flap_during_enzo(21, outage);
    let fb = recovery::link_flap_during_enzo(21, outage);
    assert_eq!(fa.wan_series.points, fb.wan_series.points);
    assert_eq!(fa.makespan, fb.makespan);
    assert_eq!(fa.events, fb.events);

    let da = recovery::disk_failure_during_sweep(31);
    let db = recovery::disk_failure_during_sweep(31);
    assert_eq!(da.seconds.to_bits(), db.seconds.to_bits());
    assert_eq!(da.baseline_seconds.to_bits(), db.baseline_seconds.to_bits());
    assert_eq!(da.degraded_reads, db.degraded_reads);
    assert_eq!(da.events, db.events);
}

/// The parallel sweep runner only decides *when* each isolated point runs,
/// never *what* it computes — so the merged output must be bit-identical at
/// 1 worker and at many workers, on any machine.
#[test]
fn parallel_sweep_matches_serial_bitwise() {
    let cfg = production::ProductionConfig::default();
    let counts = [1u32, 4, 16, 64];
    let serial = production::run_fig11_with_threads(&cfg, &counts, 1);
    let parallel = production::run_fig11_with_threads(&cfg, &counts, 4);
    assert_eq!(serial.len(), parallel.len());
    for ((rs, ws), (rp, wp)) in serial.iter().zip(&parallel) {
        assert_eq!(rs.seconds.to_bits(), rp.seconds.to_bits());
        assert_eq!(ws.seconds.to_bits(), wp.seconds.to_bits());
        assert_eq!((rs.bytes, rs.events, rs.data_path), (rp.bytes, rp.events, rp.data_path));
        assert_eq!((ws.bytes, ws.events, ws.data_path), (wp.bytes, wp.events, wp.data_path));
    }

    let ds = recovery::disk_failure_during_sweep_with_threads(31, 1);
    let dp = recovery::disk_failure_during_sweep_with_threads(31, 2);
    assert_eq!(ds.seconds.to_bits(), dp.seconds.to_bits());
    assert_eq!(ds.baseline_seconds.to_bits(), dp.baseline_seconds.to_bits());
    assert_eq!(ds.degraded_reads, dp.degraded_reads);
    assert_eq!(ds.events, dp.events);
    assert_eq!(ds.data_path, dp.data_path);
}

/// A chaos storm — progress-keyed fault injection, timeout/backoff retries,
/// failover and manager WAL recovery all at once — must replay bit-for-bit:
/// the same `ChaosSpec` + seed yields an identical `StormReport` (op
/// fingerprint, tree fingerprint and every recovery counter) across
/// repeated runs and across sweep-thread counts.
#[test]
fn chaos_storm_bit_identical_across_runs_and_threads() {
    use globalfs::scenarios::{chaos, metadata_storm};
    let cfg = metadata_storm::StormConfig::small();
    let spec = chaos::canonical_chaos(&cfg, SimDuration::from_millis(400));
    let serial = metadata_storm::run_chaos_storm_with_threads(&cfg, &spec, 1);
    let threaded = metadata_storm::run_chaos_storm_with_threads(&cfg, &spec, 8);
    assert_eq!(serial, threaded);
    assert_eq!(
        threaded,
        metadata_storm::run_chaos_storm_with_threads(&cfg, &spec, 8)
    );
    // Counters prove the replayed run really took faults and recovered.
    assert!(serial.faults_injected >= 2, "faults {}", serial.faults_injected);
    assert!(serial.timeouts > 0, "no RPC ever saw the outages");
    assert_eq!(serial.gave_up, 0);
}

#[test]
fn different_seeds_differ_where_jitter_applies() {
    let mut cfg = sc04::Sc04Config::default();
    let a = sc04::run(cfg.clone());
    cfg.seed += 1;
    let b = sc04::run(cfg);
    // Jittered link capacities depend on the seed; the series must differ
    // (while the steady-state mean stays in the same band).
    assert_ne!(a.aggregate.points, b.aggregate.points);
    assert!((a.aggregate_steady.mean - b.aggregate_steady.mean).abs() < 1.5);
}
