//! Reproducibility: identical seeds and configurations yield bit-identical
//! results across the whole stack — the property that makes every number
//! in EXPERIMENTS.md re-derivable.

use globalfs::scenarios::{production, sc02, sc04};

#[test]
fn sc02_series_bit_identical() {
    let a = sc02::run(sc02::Sc02Config::default());
    let b = sc02::run(sc02::Sc02Config::default());
    assert_eq!(a.series.points, b.series.points);
    assert_eq!(a.steady, b.steady);
}

#[test]
fn sc04_series_bit_identical() {
    let a = sc04::run(sc04::Sc04Config::default());
    let b = sc04::run(sc04::Sc04Config::default());
    assert_eq!(a.aggregate.points, b.aggregate.points);
    for (x, y) in a.link_series.iter().zip(&b.link_series) {
        assert_eq!(x.points, y.points);
    }
}

#[test]
fn production_points_bit_identical() {
    let a = production::run_scaling_point(
        production::ProductionConfig::default(),
        16,
        production::Direction::Read,
    );
    let b = production::run_scaling_point(
        production::ProductionConfig::default(),
        16,
        production::Direction::Read,
    );
    assert_eq!(a.seconds.to_bits(), b.seconds.to_bits());
}

#[test]
fn different_seeds_differ_where_jitter_applies() {
    let mut cfg = sc04::Sc04Config::default();
    let a = sc04::run(cfg.clone());
    cfg.seed += 1;
    let b = sc04::run(cfg);
    // Jittered link capacities depend on the seed; the series must differ
    // (while the steady-state mean stays in the same band).
    assert_ne!(a.aggregate.points, b.aggregate.points);
    assert!((a.aggregate_steady.mean - b.aggregate_steady.mean).abs() < 1.5);
}
