//! # globalfs — massive high-performance global file systems for Grid computing
//!
//! Facade crate re-exporting the whole workspace: a from-scratch
//! reproduction of the SC'05 paper by Andrews, Kovatch and Jordan (SDSC).
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results.
//!
//! Quick tour:
//!
//! * [`gfs`] — the wide-area shared-disk parallel filesystem (the paper's
//!   primary artifact): NSD serving, striping, byte-range tokens, page
//!   pool, multi-cluster RSA authentication, MPI-IO, SAN/FCIP client mode,
//!   and deterministic fault injection ([`gfs::FaultPlan`], [`gfs::inject`])
//!   with client-side timeout/retry/failover and a [`gfs::RecoveryLog`].
//! * [`simcore`] / [`simnet`] / [`simsan`] — the deterministic simulation
//!   substrate: event engine, flow-level WAN, Fibre Channel storage.
//! * [`gfs_auth`] — bignum/RSA/SHA-256/cipher/GSI identity substrate.
//! * [`gridftp`] — the wholesale-data-movement baseline.
//! * [`hsm`] — tape archive with watermark migration (§8).
//! * [`workloads`] — Enzo, NVO, SCEC, sort, visualization generators.
//! * [`scenarios`] — the paper's testbeds: SC'02, SC'03, SC'04,
//!   production 2005, DEISA; plus [`scenarios::ScenarioBuilder`] for
//!   assembling ad-hoc sites/farms/workloads with a fault plan, and
//!   [`scenarios::recovery`] for the crash/flap/disk-failure recovery
//!   experiments.
//!
//! ```no_run
//! use globalfs::scenarios;
//! // Reproduce the paper's Fig. 11 read point at 32 nodes:
//! let r = scenarios::production::run_scaling_point(
//!     scenarios::production::ProductionConfig::default(), 32,
//!     scenarios::production::Direction::Read);
//! println!("32 nodes: {:.2} GB/s", r.aggregate_gbyte_per_sec());
//! ```

pub use gfs;
pub use gfs_auth;
pub use gridftp;
pub use hsm;
pub use scenarios;
pub use simcore;
pub use simnet;
pub use simsan;
pub use workloads;
