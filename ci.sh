#!/usr/bin/env bash
# CI gate: build, test, lint — all offline (no network, no new deps).
# Tier-1 (ROADMAP.md) is the build + root test suite; the workspace test
# run and clippy -D warnings are the full gate.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== cargo build --release"
cargo build --release --offline

echo "== cargo test -q (tier-1)"
cargo test -q --offline

echo "== cargo test --workspace -q"
cargo test --workspace -q --offline

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "CI OK"
