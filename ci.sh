#!/usr/bin/env bash
# CI gate: build, test, lint — all offline (no network, no new deps).
# Tier-1 (ROADMAP.md) is the build + root test suite; the workspace test
# run and clippy -D warnings are the full gate.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== cargo build --release (RUSTFLAGS=-D warnings)"
# Warnings-as-errors on the release build: a perf PR that leaves dead code
# or unused results behind fails here, not in review.
RUSTFLAGS="-D warnings" cargo build --release --offline

echo "== cargo test -q (tier-1)"
cargo test -q --offline

echo "== cargo test --workspace -q"
cargo test --workspace -q --offline

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== perf smoke (benches/perf.rs -> BENCH_perf.json)"
# Runs the heavy scenarios end-to-end under a wall clock and re-checks the
# headline paper verdicts; any [OFF] verdict is a silent-results regression.
perf_out=$(cargo bench -q -p gfs-bench --bench perf --offline)
echo "$perf_out"
test -f BENCH_perf.json
if echo "$perf_out" | grep -q '\[OFF\]'; then
    echo "perf smoke: a figure verdict regressed from [OK ]" >&2
    exit 1
fi

# Events/sec floor for the recovery trio: deliberately generous (the warm
# steady state is ~15k on the 1-core CI box) so it only trips on
# order-of-magnitude regressions, not scheduler noise or cold caches.
trio_eps=$(python3 - <<'EOF'
import json
doc = json.load(open('BENCH_perf.json'))
[s] = [s for s in doc['scenarios'] if s['name'].startswith('recovery trio')]
print(int(s['events_per_sec']))
EOF
)
echo "recovery trio: ${trio_eps} events/sec (floor 1500)"
if [ "$trio_eps" -lt 1500 ]; then
    echo "perf smoke: recovery trio events/sec collapsed (${trio_eps} < 1500)" >&2
    exit 1
fi

echo "CI OK"
