#!/usr/bin/env bash
# CI gate: build, test, lint — all offline (no network, no new deps).
# Tier-1 (ROADMAP.md) is the build + root test suite; the workspace test
# run and clippy -D warnings are the full gate.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== cargo build --release (RUSTFLAGS=-D warnings)"
# Warnings-as-errors on the release build: a perf PR that leaves dead code
# or unused results behind fails here, not in review.
RUSTFLAGS="-D warnings" cargo build --release --offline

echo "== cargo test -q (tier-1)"
cargo test -q --offline

echo "== cargo test --workspace -q"
cargo test --workspace -q --offline

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== perf smoke (benches/perf.rs -> BENCH_perf.json)"
# Runs the heavy scenarios end-to-end under a wall clock and re-checks the
# headline paper verdicts; any [OFF] verdict is a silent-results regression.
perf_out=$(cargo bench -q -p gfs-bench --bench perf --offline)
echo "$perf_out"
test -f BENCH_perf.json
if echo "$perf_out" | grep -q '\[OFF\]'; then
    echo "perf smoke: a figure verdict regressed from [OK ]" >&2
    exit 1
fi

# Events/sec floors, one per BENCH_perf.json scenario: deliberately
# generous (warm steady state is 4-20x higher on the CI box) so they only
# trip on order-of-magnitude regressions, not scheduler noise or cold
# caches. The metadata storm additionally enforces an ops/sec floor — its
# tree-generation phase runs outside the simulator, so events/sec alone
# would miss a resolution-speed collapse.
python3 - <<'EOF'
import json, sys
doc = json.load(open('BENCH_perf.json'))
floors = {
    'fig11 production sweep': 800,
    'sc04 bandwidth challenge': 2000,
    'recovery trio': 1500,
    'metadata storm': 8000,
    'storm 100k sessions': 1000,
    # Envelope batching collapsed this storm's event count ~10x on purpose
    # (one gate-gather-flush cycle per ~55-op envelope instead of one event
    # per op); the wall gate below is the real regression fence for it.
    'storm partitioned': 6000,
    'chaos storm smoke': 8000,
    # The campaign entry times a parallel + a serial sweep in one wall
    # figure and its event count is small (long flows, few events), so
    # its events/sec sits near ~500; the floor only catches a collapse.
    'replication campaign': 50,
    # 24 short replays (3 corpora x 2 manager counts x 4 schedules) plus
    # oracle differencing on every op; warm steady state is ~450k ev/s.
    'trace replay differential': 20000,
    'resolve microbench': 100000,
}
by_prefix = {p: s for s in doc['scenarios'] for p in floors if s['name'].startswith(p)}
missing = sorted(set(floors) - set(by_prefix))
if missing:
    sys.exit(f"perf smoke: BENCH_perf.json lost scenarios: {missing}")
failed = False
for prefix, floor in sorted(floors.items()):
    eps = by_prefix[prefix]['events_per_sec']
    print(f"{prefix}: {eps:.0f} events/sec (floor {floor})")
    if eps < floor:
        print(f"perf smoke: {prefix} events/sec collapsed ({eps:.0f} < {floor})", file=sys.stderr)
        failed = True
storm = by_prefix['metadata storm']['metadata']
ops, ops_per_sec = storm['metadata_ops'], storm['metadata_ops_per_sec']
print(f"metadata storm: {ops:.0f} ops, {ops_per_sec:.0f} ops/sec (floors 1000000 / 50000)")
if ops < 1_000_000:
    print(f"perf smoke: metadata storm below 1M ops ({ops:.0f})", file=sys.stderr)
    failed = True
if ops_per_sec < 50_000:
    print(f"perf smoke: metadata storm ops/sec collapsed ({ops_per_sec:.0f} < 50000)", file=sys.stderr)
    failed = True

# Flyweight-session storm: the headline PR-6 claim is 100k+ sessions pushing
# >1M metadata ops/sec through batched manager envelopes. The rate is the
# *modeled* cluster throughput — storm ops over the slowest point's
# simulated duration, bottlenecked by the manager's per-op service charge —
# so the gate is deterministic on any CI host (a host wall-clock rate would
# make the gate a hardware lottery; it rides along as observability only).
# The envelope count must stay strictly below the op count — if batching
# silently degrades to one-message-per-op this catches it even while
# throughput still clears the floor.
s100k = by_prefix['storm 100k sessions']['metadata']
print(f"storm 100k: {s100k['storm100k_sessions']:.0f} sessions, {s100k['storm100k_ops']:.0f} ops "
      f"in {s100k['storm100k_sim_seconds']:.2f} simulated s -> "
      f"{s100k['storm100k_ops_per_sec']:.0f} modeled ops/sec (floor 1000000; "
      f"host wall {s100k['storm100k_wall_ops_per_sec']:.0f}/s), "
      f"{s100k['storm100k_envelopes']:.0f} envelopes for {s100k['storm100k_envelope_ops']:.0f} batched ops "
      f"({s100k['storm100k_ops_per_envelope']:.1f} ops/envelope)")
if s100k['storm100k_sessions'] < 100_000:
    print(f"perf smoke: storm 100k lost its session scale ({s100k['storm100k_sessions']:.0f})", file=sys.stderr)
    failed = True
if s100k['storm100k_ops_per_sec'] < 1_000_000:
    print(f"perf smoke: storm 100k below 1M metadata ops/sec ({s100k['storm100k_ops_per_sec']:.0f})", file=sys.stderr)
    failed = True
if not (0 < s100k['storm100k_envelopes'] < s100k['storm100k_envelope_ops']):
    print("perf smoke: fan-in batching degraded to one envelope per op", file=sys.stderr)
    failed = True

# Partitioned storm: the PR-7 claim is that M=4 subtree-sharded managers
# lift the modeled storm rate at least 3x over the single-manager ceiling
# measured in the same run (storm 100k, ~1.6M ops/sec -> floor 4.8M). Like
# the 100k gate this is the *modeled* rate, so it is host-independent.
# Cross-shard ops must be non-zero — if the rename mix stops straddling
# shard boundaries the two-phase commit path is silently untested — and
# nothing may exhaust its retry budget in a fault-free run.
spart = by_prefix['storm partitioned']['metadata']
print(f"storm partitioned: {spart['storm_part_ops']:.0f} ops in "
      f"{spart['storm_part_sim_seconds']:.2f} simulated s -> "
      f"{spart['storm_part_ops_per_sec']:.0f} modeled ops/sec "
      f"({spart['storm_part_speedup_vs_single']:.2f}x single-manager; floor 3x), "
      f"{spart['storm_part_cross_shard_ops']:.0f} cross-shard ops, "
      f"{spart['storm_part_envelopes']:.0f} envelopes "
      f"({spart['storm_part_ops_per_envelope']:.1f} ops/envelope), "
      f"delegated {spart['storm_part_delegated_ops']:.0f}, "
      f"reconciled {spart['storm_part_reconcile_ops']:.0f}, "
      f"migrations {spart['storm_part_rebalance_migrations']:.0f}, "
      f"gave up {spart['storm_part_gave_up']:.0f}, "
      f"host wall {spart['storm_part_wall_ops_per_sec']:.0f}/s")
if spart['storm_part_ops_per_sec'] < 4_800_000:
    print(f"perf smoke: partitioned storm below 4.8M modeled ops/sec ({spart['storm_part_ops_per_sec']:.0f})", file=sys.stderr)
    failed = True
if spart['storm_part_speedup_vs_single'] < 3.0:
    print(f"perf smoke: partitioned storm speedup fell under 3x ({spart['storm_part_speedup_vs_single']:.2f})", file=sys.stderr)
    failed = True
if spart['storm_part_cross_shard_ops'] <= 0:
    print("perf smoke: partitioned storm never crossed a shard boundary", file=sys.stderr)
    failed = True
if spart['storm_part_gave_up'] != 0:
    print("perf smoke: partitioned storm ops exhausted their retry budget fault-free", file=sys.stderr)
    failed = True
# PR-8 batching gates: the per-shard fan-in must keep the partitioned
# path batched (PR 7 regressed to ~1 op/envelope); writeback delegation
# and its journal reconciliation must both be live in the massive storm;
# and the in-storm rebalance policy must have migrated at least one hot
# subtree while the race ran.
if spart['storm_part_ops_per_envelope'] < 50:
    print(f"perf smoke: partitioned storm batching too thin ({spart['storm_part_ops_per_envelope']:.1f} ops/envelope, floor 50)", file=sys.stderr)
    failed = True
if spart['storm_part_delegated_ops'] <= 0:
    print("perf smoke: no ops took the writeback-delegation fast path", file=sys.stderr)
    failed = True
if spart['storm_part_reconcile_ops'] <= 0:
    print("perf smoke: delegate journals were never reconciled through the manager", file=sys.stderr)
    failed = True
if spart['storm_part_rebalance_migrations'] < 1:
    print("perf smoke: the live rebalance policy never migrated a subtree", file=sys.stderr)
    failed = True
if spart['storm_part_wall_ops_per_sec'] < 130_000:
    print(f"perf smoke: partitioned storm wall rate collapsed ({spart['storm_part_wall_ops_per_sec']:.0f} < 130000)", file=sys.stderr)
    failed = True

# Chaos smoke: the [OK]/[OFF] verdicts above already gate the invariants
# (clean fsck, oracle-identical recovery); here the published counters must
# prove faults were really taken and ridden out, and faulted throughput
# must stay within sight of healthy.
chaos = by_prefix['chaos storm smoke']['metadata']
print(f"chaos storm: healthy {chaos['chaos_healthy_ops_per_sec']:.0f} ops/sec, "
      f"crash {chaos['chaos_crash_ops_per_sec']:.0f}, flap {chaos['chaos_flap_ops_per_sec']:.0f}, "
      f"mgr-kill {chaos['chaos_mgr_kill_ops_per_sec']:.0f}; "
      f"timeouts {chaos['chaos_timeouts']:.0f}, failovers {chaos['chaos_failovers']:.0f}, "
      f"wal replayed {chaos['chaos_wal_replayed']:.0f}, gave up {chaos['chaos_gave_up']:.0f}")
if chaos['chaos_gave_up'] != 0:
    print("perf smoke: chaos storm ops exhausted their retry budget", file=sys.stderr)
    failed = True
if chaos['chaos_timeouts'] == 0 or chaos['chaos_wal_replayed'] == 0:
    print("perf smoke: chaos storm never exercised timeout/recovery paths", file=sys.stderr)
    failed = True
if chaos['chaos_crash_ops_per_sec'] < 10_000 or chaos['chaos_flap_ops_per_sec'] < 10_000:
    print("perf smoke: faulted storm throughput collapsed", file=sys.stderr)
    failed = True

# Replication campaign: the PR-9 claim is a replica-aware global data
# path. Hot-set reads against 3-site replicas must run >= 2x the
# single-home rate measured in the same simulated run; no read may ever
# be served from an invalidated copy (stale_reads == 0 is the coherence
# tripwire — the catalog records any such serve permanently); the
# write-invalidate path, the nearest-replica scheduler, the split
# fan-out, and the disk->tape migration tier must all have actually
# fired, or the campaign is silently not exercising the subsystem.
rep = by_prefix['replication campaign']['metadata']
print(f"replication campaign: speedup {rep['replica_read_speedup']:.2f}x "
      f"(home {rep['replica_home_rate_mb_s']:.0f} MB/s -> replica {rep['replica_rate_mb_s']:.0f} MB/s; floor 2x), "
      f"{rep['replica_campaign_tb']:.1f} TB fanned out, "
      f"installs {rep['replica_installs']:.0f}, invalidations {rep['replica_invalidations']:.0f}, "
      f"remote picks {rep['replica_remote_picks']:.0f}, splits {rep['replica_split_fanouts']:.0f}, "
      f"stale reads {rep['replica_stale_reads']:.0f}, stale fallbacks {rep['replica_stale_fallbacks']:.0f}, "
      f"migrated {rep['replica_migrated_bytes']/1e12:.1f} TB to tape")
if rep['replica_read_speedup'] < 2.0:
    print(f"perf smoke: replica read speedup fell under 2x ({rep['replica_read_speedup']:.2f})", file=sys.stderr)
    failed = True
if rep['replica_stale_reads'] != 0:
    print(f"perf smoke: a read was served from an invalidated replica ({rep['replica_stale_reads']:.0f})", file=sys.stderr)
    failed = True
if rep['replica_installs'] <= 0 or rep['replica_invalidations'] <= 0:
    print("perf smoke: the campaign never installed or invalidated a replica copy", file=sys.stderr)
    failed = True
if rep['replica_remote_picks'] <= 0 or rep['replica_split_fanouts'] <= 0:
    print("perf smoke: the replica scheduler never picked a remote source or split a run", file=sys.stderr)
    failed = True
if rep['replica_migrated_bytes'] <= 0:
    print("perf smoke: the cold tier never migrated campaign bytes to tape", file=sys.stderr)
    failed = True
# Trace replay differential: the PR-10 claim is that every captured trace
# is a correctness test. The bench entry replays all three corpora at M=1
# and M=4 (leases + replica catalog on) under healthy, manager-kill,
# NSD-crash and partition schedules, differencing each op against the
# in-memory model filesystem. Zero tolerance here: one divergence or one
# exhausted retry budget means replay and oracle disagree about POSIX-level
# behavior, which is exactly the silent-corruption class the harness
# exists to catch. Faults must also have really fired, or the schedules
# quietly degraded to healthy runs.
trace = by_prefix['trace replay differential']['metadata']
print(f"trace replay: {trace['trace_replays']:.0f} replays, {trace['trace_ops']:.0f} ops "
      f"({trace['trace_corpus_untar_build_ops']:.0f} untar-build / "
      f"{trace['trace_corpus_nvo_scan_ops']:.0f} nvo-scan / "
      f"{trace['trace_corpus_enzo_checkpoint_ops']:.0f} enzo-checkpoint per replay), "
      f"{trace['trace_ops_per_sec']:.0f} ops/sec wall, "
      f"divergences {trace['trace_divergences']:.0f}, gave up {trace['trace_gave_up']:.0f}, "
      f"faults {trace['trace_faults_injected']:.0f}, leases {trace['trace_lease_acquires']:.0f}")
if trace['trace_divergences'] != 0:
    print(f"perf smoke: trace replay diverged from the oracle ({trace['trace_divergences']:.0f} op(s))", file=sys.stderr)
    failed = True
if trace['trace_gave_up'] != 0:
    print(f"perf smoke: trace replay ops exhausted their retry budget ({trace['trace_gave_up']:.0f})", file=sys.stderr)
    failed = True
if trace['trace_replays'] < 24:
    print(f"perf smoke: trace differential lost schedules ({trace['trace_replays']:.0f} replays < 24)", file=sys.stderr)
    failed = True
if trace['trace_faults_injected'] <= 0:
    print("perf smoke: trace fault schedules never injected a fault", file=sys.stderr)
    failed = True
if failed:
    sys.exit(1)
EOF

echo "CI OK"
