//! The replica-aware global data path, end to end: a scaled-down
//! worldwide replication campaign (hot set read single-home, then from
//! 3-site replicas while a bulk catalog fans out and migrates to tape),
//! plus the coherence story (a mid-campaign write invalidating every
//! copy).
//!
//!     cargo run --release --offline --example replica_campaign
//!
//! Everything printed is *modeled* time — the run is deterministic and
//! bit-identical across sweep-thread counts (asserted below).

use globalfs::scenarios::replication::{
    run_campaign_point, run_campaign_with_threads, ReplicationConfig,
};

fn main() {
    // A single point of the campaign at roughly 1/4 bench scale: three
    // remote sites, four replica farms, 6 x 512 GiB bulk files per site
    // against a 1 TiB disk tier (so watermark migration must run).
    let tib = 1u64 << 40;
    let cfg = ReplicationConfig {
        points: 1,
        bulk_files: 6,
        bulk_wire_bytes: 512 << 30,
        tier_capacity: tib,
        ..ReplicationConfig::default()
    };
    let r = run_campaign_point(&cfg, 0);

    println!("=== worldwide replication campaign (1 point, scaled down) ===");
    println!(
        "hot set: {} MiB read by 6 cross-site readers, twice",
        r.hot_bytes >> 20
    );
    println!(
        "  single-home: {:7.1} MB/s  ({:.2} modeled s)",
        r.home_rate() / 1e6,
        r.home_elapsed_ns as f64 / 1e9
    );
    println!(
        "  replicated:  {:7.1} MB/s  ({:.2} modeled s)   speedup {:.2}x",
        r.replica_rate() / 1e6,
        r.replica_elapsed_ns as f64 / 1e9,
        r.speedup()
    );
    println!(
        "scheduler: {} runs planned against the catalog, {} served remote, {} split across sources (mean winning score {:.2} ms)",
        r.catalog_hits, r.remote_picks, r.split_fanouts, r.mean_pick_ms()
    );
    println!(
        "campaign: {:.1} TB fanned to 3 sites in {:.1} modeled hours, {} installs, {:.1} TB migrated disk->tape",
        r.campaign_bytes as f64 / 1e12,
        r.campaign_elapsed_ns as f64 / 3.6e12,
        r.installs,
        r.migrated_bytes as f64 / 1e12
    );
    println!(
        "consistency: {} invalidations from the mid-campaign write, {} post-invalidate home misses, {} stale fallbacks, {} stale reads",
        r.invalidations, r.catalog_misses, r.stale_fallbacks, r.stale_reads
    );
    println!(
        "audit: fsck errors {}  invariant violations {}  io errors {}  (gen watermark {})",
        r.fsck_errors, r.invariant_violations, r.io_errors, r.max_gen
    );
    assert_eq!(r.stale_reads, 0, "a read was served from an invalidated replica");
    assert!(r.is_clean(), "campaign left the world unclean");
    assert!(r.speedup() >= 2.0, "replica speedup fell under the 2x gate");

    // Determinism: the same config swept on 1 thread and 4 threads must
    // produce bit-identical reports.
    let serial = run_campaign_with_threads(&cfg, 1);
    let sweep = run_campaign_with_threads(&cfg, 4);
    assert_eq!(serial, sweep, "campaign diverged across sweep threads");
    println!("\n1-thread == 4-thread sweep: reports bit-identical");
}
