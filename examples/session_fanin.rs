//! Flyweight sessions + manager-RPC fan-in: the PR-6 call surface.
//!
//! Thousands of simulated *users* share one mounting node's page pool,
//! token mirror and dentry cache; each [`gfs::session::Session`] carries
//! only a handle table, a cwd and a bound device. Sessions that submit
//! metadata ops in the same simulation instant share **one** RPC envelope
//! to the namespace manager — one message, one watchdog, one response —
//! and the manager charges its per-op service time, so throughput is a
//! modeled (deterministic) quantity, not a host benchmark.
//!
//! ```text
//! cargo run --example session_fanin
//! ```

use gfs::fscore::FsConfig;
use gfs::types::{Owner, SessionId};
use gfs::world::{FsParams, WorldBuilder};
use gfs_auth::handshake::AccessMode;
use scenarios::metadata_storm::{run_storm_with_threads, StormConfig};
use simcore::{Bandwidth, SimDuration};

fn main() {
    // ------------------------------------------------------------------
    // 1. One site: a manager/NSD node and a login node 50µs away. The
    //    login node gets a single shared mount context carrying 64
    //    flyweight sessions — 64 users, one page pool.
    // ------------------------------------------------------------------
    let mut b = WorldBuilder::new(2005);
    let mgr = b.topo().node("mgr");
    let login = b.topo().node("login");
    b.topo().duplex_link(
        login,
        mgr,
        Bandwidth::gbit(1.0),
        SimDuration::from_micros(50),
        "lan",
    );
    let site = b.cluster("site.teragrid");
    b.filesystem(
        site,
        FsParams::ideal(
            FsConfig::small_test("gpfs0"),
            mgr,
            vec![mgr],
            Bandwidth::mbyte(400.0),
            SimDuration::from_micros(300),
        ),
    );
    let ctx = b.mount_context(site, login, 256);
    let ids: Vec<SessionId> = (0..64).map(|_| b.session(ctx)).collect();
    let (mut sim, mut w) = b.build();
    let sessions: Vec<gfs::session::Session> =
        ids.into_iter().map(gfs::session::Session).collect();

    // ------------------------------------------------------------------
    // 2. The first session mounts; the rest bind the device. Then every
    //    user mkdirs its home directory *in the same instant* — watch the
    //    64 RPCs collapse into one envelope.
    // ------------------------------------------------------------------
    let all = sessions.clone();
    let s0 = sessions[0];
    s0.mount(&mut sim, &mut w, "gpfs0", AccessMode::ReadWrite, move |sim, w, r| {
        r.expect("mount");
        for s in &all[1..] {
            s.bind_device(w, "gpfs0");
        }
        for (i, &s) in all.iter().enumerate() {
            let path = format!("/u{i:02}");
            s.mkdir(sim, w, &path, Owner::local(500 + i as u32, 100), move |sim, w, r| {
                r.expect("mkdir home");
                // Each completion lands in the same delivery event, so the
                // follow-up stats are co-instant again: batching sustains
                // itself round after round.
                let path = format!("/u{i:02}");
                s.stat(sim, w, &path, move |_sim, _w, r| {
                    r.expect("stat home");
                });
            });
        }
    });
    sim.run(&mut w);

    println!("64 sessions, 129 metadata ops (1 mount + 64 mkdir + 64 stat):");
    println!(
        "  envelopes sent: {:>3}   ops batched: {:>3}   largest batch: {:>3}",
        w.fanin.envelopes, w.fanin.envelope_ops, w.fanin.max_batch
    );
    println!(
        "  finished at {} (manager service charge: 5µs/op, FIFO)",
        sim.now()
    );
    assert!(
        w.fanin.envelopes < w.fanin.envelope_ops,
        "fan-in must batch: {} envelopes for {} ops",
        w.fanin.envelopes,
        w.fanin.envelope_ops
    );

    // ------------------------------------------------------------------
    // 3. Per-site subtree leases (PR 7): the mount context acquires a
    //    lease on /u00 from its shard manager; metadata ops under the
    //    subtree then run against a local delegate — no manager envelope,
    //    no manager service charge.
    // ------------------------------------------------------------------
    s0.acquire_lease(&mut sim, &mut w, "/u00", move |sim, w, r| {
        r.expect("lease on /u00");
        s0.mkdir(sim, w, "/u00/scratch", Owner::local(500, 100), |_sim, w, r| {
            r.expect("delegated mkdir");
            let inst = &w.fss[0];
            println!(
                "\nsubtree lease on /u00: grants {}   delegated ops {}   \
                 manager lease table: {:?}",
                inst.lease_grants,
                inst.delegated_ops,
                inst.leases.keys().collect::<Vec<_>>()
            );
        });
    });
    sim.run(&mut w);
    assert!(
        w.fss[0].delegated_ops >= 1,
        "leased subtree ops must take the delegate fast path"
    );

    // ------------------------------------------------------------------
    // 4. The same machinery at scale: a mini version of the 100k-session
    //    storm (2 points × 8 contexts × 400 sessions racing 20 ops each;
    //    the full 400-session context depth matters — the partitioned
    //    path batches behind a gather window, so a thin context would be
    //    window-bound instead of manager-bound and step 5's comparison
    //    would measure latency, not queue capacity). The reported rate is
    //    modeled cluster throughput — ops over the slowest point's
    //    simulated duration — identical on any machine.
    // ------------------------------------------------------------------
    let cfg = StormConfig {
        points: 2,
        clients_per_point: 8,
        sessions_per_client: 400,
        ops_per_client: 20,
        ..StormConfig::massive()
    };
    let r = run_storm_with_threads(&cfg, 1);
    println!(
        "\nmini-storm: {} sessions raced {} ops in {:.3} simulated s",
        r.sessions,
        r.ops,
        r.sim_ns as f64 / 1e9
    );
    println!(
        "  {:.0} modeled metadata ops/s across 2 site managers, \
         {} envelopes ({:.0} ops each), fsck clean: {}",
        r.sim_ops_per_sec(),
        r.envelopes,
        r.envelope_ops as f64 / r.envelopes as f64,
        r.fsck_clean
    );
    assert!(r.fsck_clean, "storm must leave a consistent namespace");

    // ------------------------------------------------------------------
    // 5. Break the single-manager ceiling: the same mini-storm with the
    //    namespace partitioned across M=4 cooperating manager shards
    //    (top-level dirs placed round-robin; renames that straddle a
    //    shard boundary run a two-phase envelope charging both managers).
    // ------------------------------------------------------------------
    let pr = run_storm_with_threads(&cfg.with_managers(4), 1);
    println!(
        "\npartitioned mini-storm (M=4): {} ops in {:.3} simulated s -> \
         {:.0} modeled ops/s ({:.2}x single-manager), {} cross-shard commits, \
         fsck clean: {}",
        pr.ops,
        pr.sim_ns as f64 / 1e9,
        pr.sim_ops_per_sec(),
        pr.sim_ops_per_sec() / r.sim_ops_per_sec(),
        pr.cross_shard_ops,
        pr.fsck_clean
    );
    println!(
        "  {} envelopes ({:.1} ops each), {} ops writeback-delegated, \
         {} reconciled as bulk replays, {} live rebalance migrations",
        pr.envelopes,
        pr.envelope_ops as f64 / pr.envelopes as f64,
        pr.delegated_ops,
        pr.reconcile_ops,
        pr.rebalance_migrations
    );
    assert!(pr.fsck_clean, "partitioned storm must leave a consistent namespace");
    assert!(pr.cross_shard_ops > 0, "rename mix must cross shard boundaries");
    assert!(
        pr.delegated_ops > 0 && pr.reconcile_ops > 0,
        "leased contexts must journal locally and reconcile in bulk"
    );
    assert!(
        pr.sim_ops_per_sec() > r.sim_ops_per_sec(),
        "partitioning the manager must lift the modeled rate"
    );
}
