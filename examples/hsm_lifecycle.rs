//! The §8 future-work storage hierarchy, running: a GFS disk cache in
//! front of a tape archive with automatic watermark migration, transparent
//! recall, and a remote second copy ("SDSC and the Pittsburgh
//! Supercomputing Center are already providing remote second copies for
//! each other's archives").
//!
//! ```text
//! cargo run --example hsm_lifecycle
//! ```

use hsm::{Hsm, HsmFileId, HsmPolicy, Residency, TapeLibrary, TapeSpec};
use simcore::{SimDuration, SimTime, GBYTE, TBYTE};

fn main() {
    // A 10 TB disk cache (1/100 of the eventual petabyte) over two
    // libraries: local + the PSC remote copy.
    let policy = HsmPolicy {
        disk_capacity: 10 * TBYTE,
        high_watermark: 0.90,
        low_watermark: 0.75,
        dual_copy: true,
    };
    let mut hsm = Hsm::new(
        policy,
        TapeLibrary::new(TapeSpec::stk_2005(), 6),
        Some(TapeLibrary::new(TapeSpec::stk_2005(), 6)),
    );

    // A season of dataset ingest: 120 collections of 100 GB, one every
    // "day" (compressed to 1000 s of simulated time each).
    println!("ingesting 120 x 100 GB collections into a 10 TB cache...");
    let mut t = SimTime::ZERO;
    for i in 0..120u64 {
        t += SimDuration::from_secs(1000);
        hsm.ingest(t, HsmFileId(i), 100 * GBYTE);
        if hsm.migrations > 0 && i % 20 == 0 {
            println!(
                "  after {:>3} collections: disk {:>5.1}% full, {} migrated to tape",
                i + 1,
                hsm.disk_fill() * 100.0,
                hsm.migrations
            );
        }
    }
    println!(
        "steady state: disk {:.1}% full, {} migrations, {} tape jobs (local), {} (remote copy)",
        hsm.disk_fill() * 100.0,
        hsm.migrations,
        hsm.library.jobs,
        hsm.remote_library.as_ref().unwrap().jobs,
    );

    // A researcher asks for collection 3 — long since migrated.
    let f3 = HsmFileId(3);
    assert_eq!(hsm.file(f3).unwrap().residency, Residency::TapeOnly);
    let now = t + SimDuration::from_secs(500);
    let outcome = hsm.access(now, f3).unwrap();
    println!(
        "\nrecall of collection 3: requested at {now}, readable at {} ({} later — robot mount + locate + 100 GB stream)",
        outcome.available_at,
        outcome.available_at.since(now),
    );
    assert!(outcome.recalled);

    // Re-access is instant: the copy is back on disk.
    let again = hsm.access(outcome.available_at, f3).unwrap();
    assert!(!again.recalled);
    println!("second access: instant (disk-resident, premigrated)");

    // The copyright-library argument: lose the whole SDSC machine room.
    let (survive, lost) = hsm.catastrophe_report();
    println!(
        "\nlocal catastrophe: {survive} collections recoverable from the remote second copy, {lost} (disk-only, not yet archived) lost",
    );
    println!("-> \"the equivalent of copyright libraries, which hold a guaranteed");
    println!("   copy of a particular dataset\" (paper section 8).");
}
