//! The complete §6 authentication story, end to end:
//!
//! 1. GSI identities: one certificate, different UIDs at every site, and
//!    the grid-mapfile translation that makes files belong to the person.
//! 2. The GPFS 2.3 `mmauth` workflow: keygen, out-of-band key exchange,
//!    grants (including PTF 2 read-only), `mmremotecluster`/`mmremotefs`.
//! 3. Live mounts over a simulated WAN: success, impersonation rejection,
//!    read-only enforcement, revocation, and `cipherList` encryption.
//!
//! ```text
//! cargo run --example multicluster_auth
//! ```

use gfs::admin::{connect_clusters, disconnect_fs};
use gfs::client;
use gfs::fscore::FsConfig;
use gfs::world::{FsParams, WorldBuilder};
use gfs_auth::cipher::CipherMode;
use gfs_auth::handshake::AccessMode;
use gfs_auth::identity::{CertAuthority, Dn, GlobalIdentityService, GridMapFile, LocalAccount, UserCredential};
use simcore::{det_rng, Bandwidth, SimDuration};

fn main() {
    // ------------------------------------------------------------------
    // Part 1 — identity: Dr. Alice has one certificate, three UIDs.
    // ------------------------------------------------------------------
    let mut rng = det_rng(99, "example-auth");
    let ca = CertAuthority::new(Dn::new("/C=US/O=TeraGrid/CN=Certification Authority"), 512, &mut rng);
    let alice_dn = Dn::new("/C=US/O=NPACI/CN=Alice Researcher");
    let alice = UserCredential::issue(&ca, alice_dn.clone(), 512, &mut rng);
    println!("issued certificate for {}", alice.cert.subject);
    println!("  CA verification: {}", ca.verify(&alice.cert));

    let mut ids = GlobalIdentityService::new();
    for (site, uid) in [("sdsc", 5012u32), ("ncsa", 71003), ("anl", 880)] {
        let mut map = GridMapFile::new();
        map.insert(
            alice_dn.clone(),
            LocalAccount { username: "alice".into(), uid, gid: 100 },
        );
        ids.register_site(site, map);
        println!("  {site}: alice = uid {uid}");
    }
    println!(
        "  uid 5012 at sdsc == uid {} at ncsa (same person, one DN)",
        ids.translate_uid("sdsc", 5012, "ncsa").unwrap()
    );

    // ------------------------------------------------------------------
    // Part 2+3 — clusters, grants, and live mounts.
    // ------------------------------------------------------------------
    let mut b = WorldBuilder::new(99);
    let sdsc = b.topo().node("sdsc");
    let ncsa = b.topo().node("ncsa");
    let rogue = b.topo().node("rogue");
    b.topo().duplex_link(sdsc, ncsa, Bandwidth::gbit(10.0), SimDuration::from_millis(28), "tg");
    b.topo().duplex_link(sdsc, rogue, Bandwidth::gbit(1.0), SimDuration::from_millis(50), "inet");
    let c_sdsc = b.cluster("sdsc.teragrid");
    let c_ncsa = b.cluster("ncsa.teragrid");
    let c_rogue = b.cluster("rogue.example.org");
    b.filesystem(
        c_sdsc,
        FsParams::ideal(
            FsConfig::small_test("gpfs-wan"),
            sdsc,
            vec![sdsc],
            Bandwidth::mbyte(400.0),
            SimDuration::from_micros(300),
        ),
    );
    let ncsa_client = b.client(c_ncsa, ncsa, 64);
    let rogue_client = b.client(c_rogue, rogue, 64);
    let (mut sim, mut w) = b.build();

    println!("\n--- mmauth workflow ---");
    println!(
        "sdsc key fingerprint: {}",
        w.clusters[c_sdsc.0 as usize].auth.public_key().fingerprint()
    );
    println!(
        "ncsa key fingerprint: {}",
        w.clusters[c_ncsa.0 as usize].auth.public_key().fingerprint()
    );
    // Legitimate trust: SDSC <-> NCSA with traffic encryption.
    connect_clusters(&mut w, c_sdsc, c_ncsa, "gpfs-wan", AccessMode::ReadOnly, sdsc);
    w.clusters[c_sdsc.0 as usize].auth.cipher_mode = CipherMode::Encrypt;
    // The rogue cluster knows the address but was never mmauth-added;
    // wire only its client-side tables.
    w.clusters[c_rogue.0 as usize].remote_clusters.insert(
        "sdsc.teragrid".into(),
        gfs::world::RemoteClusterDef { contact: sdsc },
    );
    w.clusters[c_rogue.0 as usize].remote_fs.insert(
        "gpfs-wan".into(),
        gfs::world::RemoteFsDef {
            cluster: "sdsc.teragrid".into(),
            remote_device: "gpfs-wan".into(),
        },
    );

    println!("\n--- mounts over the WAN ---");
    client::mount(&mut sim, &mut w, ncsa_client, "gpfs-wan", AccessMode::ReadWrite, move |sim, w, r| {
        println!("[{}] ncsa rw mount:  {:?}  (grant is read-only — PTF 2 enforcement)", sim.now(), r.err().map(|e| e.to_string()));
        client::mount(sim, w, ncsa_client, "gpfs-wan", AccessMode::ReadOnly, move |sim, w, r| {
            println!("[{}] ncsa ro mount:  ok = {}", sim.now(), r.is_ok());
            let key = w.clients[ncsa_client.0 as usize]
                .mounts
                .get("gpfs-wan")
                .and_then(|m| m.session_key.clone());
            println!(
                "[{}] cipherList session key delivered under RSA: {} bytes",
                sim.now(),
                key.map(|k| k.len()).unwrap_or(0)
            );
            client::mount(sim, w, rogue_client, "gpfs-wan", AccessMode::ReadOnly, move |sim, _w, r| {
                println!(
                    "[{}] rogue mount:    {:?}",
                    sim.now(),
                    r.err().map(|e| e.to_string())
                );
            });
        });
    });
    sim.run(&mut w);

    // Revocation.
    println!("\n--- revocation (mmauth deny) ---");
    disconnect_fs(&mut w, c_sdsc, c_ncsa, "gpfs-wan");
    // Re-wire the client tables so the mount *attempt* still resolves:
    w.clusters[c_ncsa.0 as usize].remote_fs.insert(
        "gpfs-wan".into(),
        gfs::world::RemoteFsDef {
            cluster: "sdsc.teragrid".into(),
            remote_device: "gpfs-wan".into(),
        },
    );
    client::mount(&mut sim, &mut w, ncsa_client, "gpfs-wan", AccessMode::ReadOnly, move |sim, _w, r| {
        println!(
            "[{}] ncsa after deny: {:?}",
            sim.now(),
            r.err().map(|e| e.to_string())
        );
    });
    sim.run(&mut w);
    println!("\nauthentication story complete.");
}
