//! The paper's §4 "dominant mode of operation for grid supercomputing":
//! Enzo runs at SDSC and writes its output *directly* to a central GFS at
//! another site; visualization consumers at two more sites read pieces of
//! it without ever ingesting the dataset whole.
//!
//! ```text
//! cargo run --release --example enzo_checkpoint
//! ```

use gfs::fscore::{DataMode, FsConfig};
use gfs::stream::{gfs_stream, StreamDir};
use gfs::types::{ClientId, FsId};
use gfs::world::{FsParams, GfsWorld, WorldBuilder};
use simcore::{Bandwidth, Sim, SimDuration, GBYTE, MBYTE};
use simnet::Network;
use workloads::{enzo, Phase};

fn main() {
    // Central repository site + compute site + two visualization sites.
    let mut b = WorldBuilder::new(12);
    let repo = b.topo().node("repo-servers");
    let hub = b.topo().node("tg-hub");
    let compute = b.topo().node("sdsc-datastar");
    let vis1 = b.topo().node("ncsa-vis");
    let vis2 = b.topo().node("anl-vis");
    b.topo().duplex_link(repo, hub, Bandwidth::gbit(30.0), SimDuration::from_millis(10), "repo");
    b.topo().duplex_link(compute, hub, Bandwidth::gbit(30.0), SimDuration::from_millis(27), "sdsc");
    b.topo().duplex_link(vis1, hub, Bandwidth::gbit(10.0), SimDuration::from_millis(3), "ncsa");
    b.topo().duplex_link(vis2, hub, Bandwidth::gbit(10.0), SimDuration::from_millis(1), "anl");

    let cl = b.cluster("central.repo");
    let fs = b.filesystem(
        cl,
        FsParams::ideal(
            FsConfig {
                name: "gpfs-repo".into(),
                block_size: 1 << 20,
                nsd_blocks: 1 << 26,
                nsd_count: 64,
                data_mode: DataMode::Synthetic,
            },
            repo,
            vec![repo],
            Bandwidth::gbyte(6.0),
            SimDuration::from_micros(200),
        ),
    );
    let enzo_client = b.client(cl, compute, 16);
    let vis_a = b.client(cl, vis1, 16);
    let vis_b = b.client(cl, vis2, 16);
    let (mut sim, mut w) = b.build();
    Network::enable_monitoring(&mut sim, &mut w, SimDuration::from_secs(5));

    // A scaled Enzo hour: 12 checkpoints of ~8.3 GB with compute between
    // (1/10 of the paper's 1 TB/hour, so the example runs instantly).
    let wl = enzo(12, 8_333 * MBYTE, SimDuration::from_secs(30));
    println!(
        "Enzo campaign: {} checkpoints, {:.1} GB total, {} compute",
        12,
        wl.write_bytes() as f64 / GBYTE as f64,
        wl.compute_time()
    );

    run_phases(&mut sim, &mut w, enzo_client, fs, wl.phases.clone(), 0);

    // Visualization: each site repeatedly reads 2 GB slices as soon as
    // checkpoints land — partial access, never the whole dataset.
    for (name, c) in [("NCSA", vis_a), ("ANL", vis_b)] {
        schedule_vis(&mut sim, &mut w, c, fs, name, 8);
    }

    sim.run(&mut w);
    let end = sim.now();
    println!(
        "campaign finished at {end}; total bytes through the repo: {:.1} GB",
        w.net.total_delivered() as f64 / GBYTE as f64
    );
    let series = w.net.finish_monitoring(end);
    let repo_in = series.iter().find(|s| s.name == "repo<").expect("repo link");
    println!(
        "repo ingest: peak {:.2} Gb/s, mean {:.2} Gb/s",
        repo_in.max() * 8.0 / 1e9,
        repo_in.mean() * 8.0 / 1e9
    );
}

/// Drive a phase list through the streaming path.
fn run_phases(
    sim: &mut Sim<GfsWorld>,
    w: &mut GfsWorld,
    client: ClientId,
    fs: FsId,
    mut phases: Vec<Phase>,
    checkpoint_no: u32,
) {
    if phases.is_empty() {
        println!("[{:>9}] Enzo run complete", sim.now());
        return;
    }
    let phase = phases.remove(0);
    match phase {
        Phase::Compute(d) => {
            sim.after(d, move |sim, w| {
                run_phases(sim, w, client, fs, phases, checkpoint_no)
            });
        }
        Phase::Write { bytes } => {
            let t0 = sim.now();
            gfs_stream(sim, w, client, fs, bytes, StreamDir::Write, 1, move |sim, w| {
                let dt = sim.now().since(t0);
                println!(
                    "[{:>9}] checkpoint {:>2}: {:>6.1} GB in {} ({:.2} GB/s)",
                    sim.now(),
                    checkpoint_no,
                    bytes as f64 / GBYTE as f64,
                    dt,
                    bytes as f64 / GBYTE as f64 / dt.as_secs_f64()
                );
                run_phases(sim, w, client, fs, phases, checkpoint_no + 1);
            });
        }
        Phase::Read { bytes } | Phase::ReadAt { bytes, .. } => {
            gfs_stream(sim, w, client, fs, bytes, StreamDir::Read, 1, move |sim, w| {
                run_phases(sim, w, client, fs, phases, checkpoint_no)
            });
        }
    }
}

/// A visualization consumer: read a slice, think, repeat.
fn schedule_vis(
    sim: &mut Sim<GfsWorld>,
    _w: &mut GfsWorld,
    client: ClientId,
    fs: FsId,
    site: &'static str,
    remaining: u32,
) {
    if remaining == 0 {
        return;
    }
    let slice = 2 * GBYTE;
    // Wait for data to accumulate, then read a slice.
    sim.after(SimDuration::from_secs(45), move |sim, w| {
        let t0 = sim.now();
        gfs_stream(sim, w, client, fs, slice, StreamDir::Read, 2, move |sim, w| {
            let dt = sim.now().since(t0);
            println!(
                "[{:>9}] {site}: visualized a {:.0} GB slice in {dt}",
                sim.now(),
                slice as f64 / GBYTE as f64
            );
            schedule_vis(sim, w, client, fs, site, remaining - 1);
        });
    });
}
