//! Quickstart: build a two-site Global File System, mount it across a
//! simulated WAN with RSA cluster authentication, and do real file I/O.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bytes::Bytes;
use gfs::admin::connect_clusters;
use gfs::client;
use gfs::fscore::FsConfig;
use gfs::types::{OpenFlags, Owner};
use gfs::world::{FsParams, WorldBuilder};
use gfs_auth::handshake::AccessMode;
use simcore::{Bandwidth, SimDuration};

fn main() {
    // ------------------------------------------------------------------
    // 1. Topology: SDSC owns the filesystem; NCSA is 30 ms away.
    // ------------------------------------------------------------------
    let mut b = WorldBuilder::new(7);
    let sdsc = b.topo().node("sdsc");
    let ncsa = b.topo().node("ncsa");
    b.topo().duplex_link(
        sdsc,
        ncsa,
        Bandwidth::gbit(10.0),
        SimDuration::from_millis(30),
        "teragrid",
    );

    // 2. Clusters (each gets an RSA keypair — `mmauth genkey`).
    let sdsc_cluster = b.cluster("sdsc.teragrid");
    let ncsa_cluster = b.cluster("ncsa.teragrid");

    // 3. The filesystem: 8 NSDs behind a server at SDSC.
    b.filesystem(
        sdsc_cluster,
        FsParams::ideal(
            FsConfig::small_test("gpfs-wan"),
            sdsc,
            vec![sdsc],
            Bandwidth::mbyte(400.0),
            SimDuration::from_micros(300),
        ),
    );
    let writer = b.client(sdsc_cluster, sdsc, 256);
    let reader = b.client(ncsa_cluster, ncsa, 256);
    let (mut sim, mut w) = b.build();

    // 4. Multi-cluster trust: mmauth add/grant + mmremotecluster/-fs.
    connect_clusters(
        &mut w,
        sdsc_cluster,
        ncsa_cluster,
        "gpfs-wan",
        AccessMode::ReadWrite,
        sdsc,
    );

    // ------------------------------------------------------------------
    // 5. SDSC writes a file; NCSA mounts over the WAN and reads it back.
    // ------------------------------------------------------------------
    let payload = Bytes::from_static(b"Massive High-Performance Global File Systems for Grid computing");
    let expect = payload.clone();
    client::mount(&mut sim, &mut w, writer, "gpfs-wan", gfs_auth::handshake::AccessMode::ReadWrite, move |sim, w, r| {
        r.expect("local mount");
        println!("[{:>9}] SDSC mounted gpfs-wan locally", sim.now());
        client::open(
            sim,
            w,
            writer,
            "gpfs-wan",
            "/hello.dat",
            OpenFlags::ReadWrite,
            Owner::local(500, 100),
            move |sim, w, r| {
                let h = r.expect("open for write");
                client::write(sim, w, writer, h, 0, payload, move |sim, w, r| {
                    r.expect("write");
                    client::close(sim, w, writer, h, move |sim, w, r| {
                        r.expect("close flushes to the NSDs");
                        println!("[{:>9}] SDSC wrote and closed /hello.dat", sim.now());
                        // Remote side: RSA challenge-response, then read.
                        client::mount(
                            sim,
                            w,
                            reader,
                            "gpfs-wan",
                            AccessMode::ReadWrite,
                            move |sim, w, r| {
                                r.expect("remote mount (mmauth handshake)");
                                println!(
                                    "[{:>9}] NCSA authenticated + mounted over the WAN",
                                    sim.now()
                                );
                                client::open(
                                    sim,
                                    w,
                                    reader,
                                    "gpfs-wan",
                                    "/hello.dat",
                                    OpenFlags::Read,
                                    Owner::local(71003, 100),
                                    move |sim, w, r| {
                                        let h = r.expect("open for read");
                                        client::read(
                                            sim,
                                            w,
                                            reader,
                                            h,
                                            0,
                                            expect.len() as u64,
                                            move |sim, _w, r| {
                                                let got = r.expect("read");
                                                assert_eq!(got, expect, "bytes survive the WAN");
                                                println!(
                                                    "[{:>9}] NCSA read back {} bytes: \"{}\"",
                                                    sim.now(),
                                                    got.len(),
                                                    String::from_utf8_lossy(&got)
                                                );
                                            },
                                        );
                                    },
                                );
                            },
                        );
                    });
                });
            },
        );
    });
    sim.run(&mut w);
    println!("done: one filesystem, two administrative domains, zero data copies.");
}
