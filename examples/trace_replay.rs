//! Trace replay + oracle differencing: the PR-10 call surface.
//!
//! Every captured trace becomes a correctness test: the line codec turns
//! text into [`scenarios::trace::TraceOp`]s, union-find splits them into
//! namespace-disjoint streams, and the replay driver runs each stream
//! through the full session stack — leases, sharded managers, replica
//! catalog — while an in-memory model filesystem executes the same ops
//! and every result (typed errors, attributes, listings, bytes) is
//! differenced op-by-op. The chaos entry then replays a corpus under
//! manager-kill / NSD-crash / partition schedules and demands zero
//! divergence anyway.
//!
//! ```text
//! cargo run --example trace_replay
//! ```

use gfs::faults::ProgressPlan;
use gfs::types::FsId;
use scenarios::metadata_storm::ChaosSpec;
use scenarios::trace::{
    check_trace_differential_sized, parse_trace, render_trace, replay_trace, split_streams,
    ReplayConfig, TraceCorpus,
};
use simcore::SimDuration;

fn main() {
    // ------------------------------------------------------------------
    // 1. The codec: a corpus renders to plain text and parses back
    //    losslessly — the on-disk form a real strace/darshan converter
    //    would emit.
    // ------------------------------------------------------------------
    let ops = TraceCorpus::EnzoCheckpoint.generate(2, 1, 2005);
    let text = render_trace(&ops);
    println!("enzo-checkpoint corpus, first 6 trace lines:");
    for line in text.lines().take(6) {
        println!("  {line}");
    }
    let parsed = parse_trace(&text).expect("rendered trace must parse");
    assert_eq!(parsed, ops, "codec round-trip");
    let streams = split_streams(&ops);
    println!(
        "  ... {} ops total, {} namespace-disjoint streams\n",
        ops.len(),
        streams.len()
    );

    // ------------------------------------------------------------------
    // 2. Healthy replay, every corpus: each op's result must equal the
    //    model filesystem's, and the final trees must fingerprint-equal.
    // ------------------------------------------------------------------
    println!("healthy replay vs oracle (M=1):");
    println!("  corpus           ops  errors  divergences  tree==oracle");
    for corpus in TraceCorpus::ALL {
        let ops = corpus.generate(4, 2, 2005);
        let r = replay_trace(&ops, &ReplayConfig::default(), &ChaosSpec::none());
        println!(
            "  {:<15} {:>4}  {:>6}  {:>11}  {}",
            corpus.name(),
            r.ops,
            r.errors,
            r.divergences,
            r.tree_matches_oracle
        );
        assert_eq!(r.divergences, 0);
        assert!(r.tree_matches_oracle);
    }

    // ------------------------------------------------------------------
    // 3. A manager kill mid-trace: recovery (epoch bump + WAL replay)
    //    must be semantically invisible — the differ still sees zero
    //    divergence and identical trees.
    // ------------------------------------------------------------------
    let ops = TraceCorpus::UntarBuild.generate(3, 2, 7);
    let spec = ChaosSpec {
        progress: ProgressPlan::new().server_crash_at_op(
            ops.len() as u64 * 2 / 5,
            FsId(0),
            "trace-srv0",
            Some(SimDuration::from_millis(600)),
        ),
        timed: Default::default(),
        wan_clients: false,
    };
    let r = replay_trace(&ops, &ReplayConfig::default(), &spec);
    println!(
        "\nuntar-build under a mid-trace manager kill: {} fault(s), {} epoch bump(s), \
         {} WAL record(s) replayed, {} divergences, tree==oracle: {}",
        r.faults_injected, r.manager_epochs, r.wal_replayed, r.divergences, r.tree_matches_oracle
    );
    assert!(r.manager_epochs >= 1 && r.wal_replayed >= 1);
    assert_eq!(r.divergences, 0);
    assert!(r.tree_matches_oracle);

    // ------------------------------------------------------------------
    // 4. The full differential at example scale: M=1 and M=4 (leases +
    //    replica catalog on) under healthy, manager-kill, NSD-crash and
    //    partition schedules, plus a determinism witness.
    // ------------------------------------------------------------------
    let verdict = check_trace_differential_sized(TraceCorpus::EnzoCheckpoint, 3, 1);
    println!(
        "\nenzo-checkpoint differential: {} replays, {} ops, clean: {}",
        verdict.reports.len(),
        verdict.total_ops(),
        verdict.is_clean()
    );
    for (label, r) in &verdict.reports {
        println!(
            "  {:<28} divergences {}  gave_up {}  faults {}  leases {}",
            label, r.divergences, r.gave_up, r.faults_injected, r.lease_acquires
        );
    }
    verdict.assert_clean();
    println!("\nevery trace replayed; zero divergence from the model filesystem");
}
