//! Tour of the performance-engineering surface added to the simulation hot
//! path: cancellable timers (`Sim::timer_after` / `Sim::cancel_timer`), the
//! per-scenario `events` counters that feed the wall-clock perf harness
//! (`cargo bench -p gfs-bench --bench perf`), the deterministic parallel
//! sweep runner, and the data-path counters (page pool, NSD coalescing).
//!
//! Run with `cargo run --release --offline --example perf_tour`.

use globalfs::scenarios::parallel::run_indexed;
use globalfs::scenarios::production::{
    run_fig11_with_threads, run_scaling_point, Direction, ProductionConfig,
};
use globalfs::scenarios::recovery::{crash_one_of_n, CrashConfig};
use globalfs::simcore::{Sim, SimDuration};
use std::time::Instant;

fn main() {
    // ------------------------------------------------------------------
    // Cancellable timers: the watchdog pattern used by the gfs client.
    // A timeout is armed per request; the response cancels it, so the
    // event queue does not accumulate dead timers until expiry.
    // ------------------------------------------------------------------
    let mut sim: Sim<Vec<&'static str>> = Sim::new();
    let mut log: Vec<&'static str> = Vec::new();

    let watchdog = sim.timer_after(SimDuration::from_secs(30), |_s, log: &mut Vec<_>| {
        log.push("timeout fired (should not happen)");
    });
    // The "response" arrives long before the timeout and disarms it.
    sim.after(SimDuration::from_millis(5), move |sim, log: &mut Vec<_>| {
        if sim.cancel_timer(watchdog) {
            log.push("response in time, watchdog cancelled");
        }
    });
    // A second watchdog that genuinely expires: its response comes too
    // late, notices the lost race, and stands down.
    let watchdog = sim.timer_after(SimDuration::from_millis(1), |_s, log: &mut Vec<_>| {
        log.push("slow request timed out");
    });
    sim.after(SimDuration::from_millis(2), move |sim, log: &mut Vec<_>| {
        if !sim.cancel_timer(watchdog) {
            log.push("late response dropped (timer already fired)");
        }
    });

    sim.run(&mut log);
    println!("=== cancellable timers ===");
    for line in &log {
        println!("  {line}");
    }
    assert_eq!(sim.pending(), 0, "cancelled timers leave nothing behind");

    // ------------------------------------------------------------------
    // Scenario event counters: simulated work vs. wall-clock cost. The
    // perf harness reports events/sec for the heavy scenarios from these
    // same fields.
    // ------------------------------------------------------------------
    println!("\n=== events vs. wall clock (Fig. 11 read points) ===");
    for nodes in [8u32, 32, 128] {
        let t0 = Instant::now();
        let p = run_scaling_point(ProductionConfig::default(), nodes, Direction::Read);
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "  {nodes:>3} nodes: {:>6.1} MB/s agg, {:>4} events, {:>5.1} ms wall ({:.0} events/s)",
            p.aggregate_mbyte_per_sec(),
            p.events,
            wall * 1e3,
            p.events as f64 / wall.max(1e-9),
        );
    }

    // ------------------------------------------------------------------
    // Deterministic parallel sweeps: every figure point is an isolated
    // seeded world, so `run_indexed` can fan points across threads and
    // the merged output is bit-identical at any worker count.
    // ------------------------------------------------------------------
    println!("\n=== parallel sweep determinism (Fig. 11, 1 vs 4 workers) ===");
    let cfg = ProductionConfig::default();
    let counts = [1u32, 8, 32];
    let serial = run_fig11_with_threads(&cfg, &counts, 1);
    let parallel = run_fig11_with_threads(&cfg, &counts, 4);
    let identical = serial.iter().zip(&parallel).all(|((rs, ws), (rp, wp))| {
        rs.seconds.to_bits() == rp.seconds.to_bits() && ws.seconds.to_bits() == wp.seconds.to_bits()
    });
    println!("  {} points, serial == parallel bitwise: {identical}", serial.len());
    assert!(identical, "parallel sweep diverged from serial");
    // The raw runner works for any per-index job that owns its state.
    let squares = run_indexed(8, 4, |i| i * i);
    println!("  run_indexed(8, 4, i*i) -> {squares:?}");

    // ------------------------------------------------------------------
    // Data-path counters: the crash scenario exercises the real block
    // path (page pool + coalesced NSD scatter-gather), and its report
    // carries the counters the perf harness writes to BENCH_perf.json.
    // ------------------------------------------------------------------
    println!("\n=== data-path counters (crash 1-of-64 scenario) ===");
    let report = crash_one_of_n(&CrashConfig::default());
    let d = &report.data_path;
    println!(
        "  pool: {} hits / {} misses (hit rate {:.1}%), {} evictions",
        d.pool_hits,
        d.pool_misses,
        100.0 * d.hit_rate(),
        d.pool_evictions,
    );
    println!(
        "  NSD wire: {} requests, {} coalesced (>1 block), {} blocks, mean request {:.0} KiB",
        d.nsd_requests,
        d.nsd_coalesced,
        d.nsd_blocks,
        d.mean_request_bytes() / 1024.0,
    );
    assert!(d.nsd_coalesced > 0, "striped write-behind must coalesce runs");
}
