//! Deterministic fault injection through the public API, end to end.
//!
//! ```text
//! cargo run --release --example fault_injection [seed]
//! cargo run --release --example fault_injection -- 4242 --crash-all
//! ```
//!
//! Builds a small NSD farm with [`ScenarioBuilder`], crashes one server in
//! the middle of a striped client write via a [`FaultPlan`], and prints the
//! recovery log plus the measured recovery metrics. Then runs the paper-
//! scale 1-of-64 crash experiment twice with the same seed to demonstrate
//! byte-identical replay. `--crash-all` instead kills every server and
//! shows the typed `FsError` surfacing (no panic).

use globalfs::gfs::FaultPlan;
use globalfs::scenarios::recovery::{crash_one_of_n, CrashConfig};
use globalfs::scenarios::{NsdFarm, ScenarioBuilder, Workload};
use globalfs::simcore::{Bandwidth, SimDuration, SimTime, MBYTE};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args
        .iter()
        .skip(1)
        .find_map(|a| a.parse().ok())
        .unwrap_or(4242);
    let crash_all = args.iter().any(|a| a == "--crash-all");

    // --- An ad-hoc scenario: 8-server farm, one client, crash mid-write.
    let mut sb = ScenarioBuilder::new(seed);
    let farm = NsdFarm::new("demo", 8).stored_data().block_size(256 * 1024);
    let crash_names: Vec<String> = if crash_all {
        (0..8).map(|i| farm.server_name(i)).collect()
    } else {
        vec![farm.server_name(2)]
    };
    let fs = sb.nsd_farm("sdsc", farm);
    let c = sb.clients(
        "sdsc",
        1,
        Bandwidth::gbit(1.0),
        SimDuration::from_micros(100),
        64,
    )[0];
    sb.workload(Workload::file_write(c, "demo", "/ckpt", 32 * MBYTE, MBYTE));
    let mut plan = FaultPlan::new();
    for name in crash_names {
        plan = plan.server_crash(SimTime::from_millis(150), fs, name);
    }
    sb.faults(plan);
    sb.sample_every(SimDuration::from_millis(50));
    let run = sb.run(SimTime::from_secs(120));

    println!("=== ad-hoc scenario (seed {seed}{}) ===", if crash_all { ", ALL servers crashed" } else { "" });
    println!("workloads completed: {}   errors: {:?}", run.completed, run.errors);
    println!("fsck clean: {}", globalfs::gfs::fsck(&run.world.fss[fs.0 as usize].core).is_clean());
    println!("recovery log ({} events):", run.recovery.events.len());
    for e in run.recovery.events.iter().take(12) {
        println!("  {:>9.3}s  {:?}", e.at.as_secs_f64(), e.what);
    }
    if run.recovery.events.len() > 12 {
        println!("  ... {} more", run.recovery.events.len() - 12);
    }
    if crash_all {
        return;
    }

    // --- The paper-scale experiment: crash 1 of 64 servers mid-write.
    let cfg = CrashConfig { seed, ..CrashConfig::default() };
    let a = crash_one_of_n(&cfg);
    println!("\n=== crash 1 of 64 NSD servers mid-write (seed {seed}) ===");
    println!("write completed: {}   errors: {:?}", a.completed == 1, a.errors);
    println!("fsck clean: {}   read-back intact: {}", a.fsck_clean, a.data_intact);
    println!(
        "time-to-detect: {:?}   time-to-failover: {:?}",
        a.time_to_detect.map(|d| d.as_secs_f64()),
        a.time_to_failover.map(|d| d.as_secs_f64())
    );
    match &a.dip {
        Some(d) => println!(
            "throughput dip: {:.3}s -> {:.3}s (duration {:.3}s, floor {:.1} MB/s)",
            d.start.as_secs_f64(),
            d.end.as_secs_f64(),
            d.duration.as_secs_f64(),
            d.floor / MBYTE as f64
        ),
        None => println!("throughput dip: none recorded"),
    }
    println!("write finished at {:.3}s", a.finish.as_secs_f64());

    // --- Determinism: same seed, byte-identical replay.
    let b = crash_one_of_n(&cfg);
    let identical = a.finish == b.finish
        && a.client_series.points == b.client_series.points
        && a.time_to_failover == b.time_to_failover;
    println!("\nsame-seed rerun byte-identical: {identical}");
    assert!(identical, "determinism violated");
}
