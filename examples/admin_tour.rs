//! An administrator's tour of the production Global File System: build
//! the 2005 deployment on the real TeraGrid topology (paper Fig. 6), wire
//! the multi-cluster exports, and inspect everything through the `mm*`
//! command views — including a live key rotation and an `mmfsck`.
//!
//! ```text
//! cargo run --example admin_tour
//! ```

use bytes::Bytes;
use gfs::admin::connect_clusters;
use gfs::client;
use gfs::commands::{mmauth_show, mmdf, mmdiag_tokens, mmlsfs, mmlsmount, mmremote_show};
use gfs::fscore::FsConfig;
use gfs::fsck::fsck;
use gfs::types::{OpenFlags, Owner};
use gfs::world::{FsParams, WorldBuilder};
use gfs_auth::handshake::AccessMode;
use scenarios::teragrid::{self, Site};
use simcore::{det_rng, Bandwidth, SimDuration};

fn main() {
    // The Fig. 6 backbone, with the GFS at SDSC and a client at NCSA.
    let mut b = WorldBuilder::new(2005);
    let tg = teragrid::build(b.topo());
    let sdsc_edge = tg.site(Site::Sdsc);
    let ncsa_edge = tg.site(Site::Ncsa);
    let servers = b.topo().node("sdsc-nsd-farm");
    b.topo().duplex_link(
        servers,
        sdsc_edge,
        Bandwidth::gbit(64.0).scaled(0.94),
        SimDuration::from_micros(100),
        "farm",
    );
    let c_sdsc = b.cluster("sdsc.teragrid");
    let c_ncsa = b.cluster("ncsa.teragrid");
    let fs = b.filesystem(
        c_sdsc,
        FsParams::ideal(
            FsConfig::small_test("gpfs-wan"),
            servers,
            vec![servers],
            Bandwidth::gbyte(6.0),
            SimDuration::from_micros(200),
        ),
    );
    let ncsa_client = b.client(c_ncsa, ncsa_edge, 128);
    let (mut sim, mut w) = b.build();
    connect_clusters(&mut w, c_sdsc, c_ncsa, "gpfs-wan", AccessMode::ReadWrite, servers);

    println!("## mmlsfs gpfs-wan\n{}", mmlsfs(&w, fs));
    println!("## mmdf gpfs-wan\n{}", mmdf(&w, fs));
    println!("## mmauth show (at sdsc)\n{}", mmauth_show(&w, c_sdsc));
    println!("## mmremotecluster/mmremotefs show (at ncsa)\n{}", mmremote_show(&w, c_ncsa));

    // Mount from NCSA and do some I/O so the views have content.
    client::mount(&mut sim, &mut w, ncsa_client, "gpfs-wan", AccessMode::ReadWrite, move |sim, w, r| {
        r.expect("mount");
        client::open(sim, w, ncsa_client, "gpfs-wan", "/tour.dat", OpenFlags::ReadWrite, Owner::local(71003, 100), move |sim, w, r| {
            let h = r.unwrap();
            client::write(sim, w, ncsa_client, h, 0, Bytes::from(vec![1u8; 1 << 20]), move |sim, w, r| {
                r.unwrap();
                client::fsync(sim, w, ncsa_client, h, |_s, _w, r| r.unwrap());
            });
        });
    });
    sim.run(&mut w);

    println!("## mmlsmount gpfs-wan -L\n{}", mmlsmount(&w, fs));
    println!("## mmdiag --tokens\n{}", mmdiag_tokens(&w, fs));
    println!("## mmdf gpfs-wan (after writes)\n{}", mmdf(&w, fs));

    // Key rotation, live.
    println!("## key rotation (mmauth genkey new/commit)");
    let mut rng = det_rng(2005, "rotation");
    let old_fp = w.clusters[c_ncsa.0 as usize].auth.public_key().fingerprint();
    let new_pub = w.clusters[c_ncsa.0 as usize].auth.genkey_new(512, &mut rng);
    w.clusters[c_sdsc.0 as usize]
        .auth
        .mmauth_update_key("ncsa.teragrid", new_pub);
    w.clusters[c_ncsa.0 as usize].auth.genkey_commit();
    w.clusters[c_sdsc.0 as usize]
        .auth
        .mmauth_finalize_key("ncsa.teragrid");
    let new_fp = w.clusters[c_ncsa.0 as usize].auth.public_key().fingerprint();
    println!("  ncsa key rotated: {old_fp} -> {new_fp}");
    client::mount(&mut sim, &mut w, ncsa_client, "gpfs-wan", AccessMode::ReadOnly, |_s, _w, r| {
        println!("  remount under new key: ok = {}\n", r.is_ok());
    });
    sim.run(&mut w);

    // Capacity expansion, the §8 plan: add disks, then restripe.
    println!("## mmadddisk + mmrestripefs (paper §8 expansion)");
    {
        let core = &mut w.fss[fs.0 as usize].core;
        let before = core.nsd_usage();
        core.add_nsds(8);
        let moved = core.restripe();
        let after = core.nsd_usage();
        println!("  usage before: {before:?}");
        println!("  added 8 NSDs, restripe moved {moved} blocks");
        println!("  usage after:  {after:?}\n");
    }

    // And a consistency check.
    let report = fsck(&w.fss[fs.0 as usize].core);
    println!(
        "## mmfsck gpfs-wan (after expansion)\n  clean: {} ({} inodes, {} files, {} blocks)",
        report.is_clean(),
        report.inodes,
        report.files,
        report.blocks
    );
}
