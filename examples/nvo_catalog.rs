//! The NVO argument (paper §1/§5): a 50 TB astronomy archive "used more
//! as a database", queried for individual pieces of very large files. One
//! central GFS copy beats shipping 50 TB to every site with GridFTP.
//!
//! This example runs a query campaign both ways — direct WAN partial
//! access through the Global File System versus staging the dataset first
//! — and prints the ledger.
//!
//! ```text
//! cargo run --release --example nvo_catalog
//! ```

use gfs::stream::{run_stream, StreamSpec};
use gfs::world::{GfsWorld, WorldBuilder};
use gridftp::TransferSpec;
use simcore::{det_rng, Bandwidth, Sim, SimDuration, SimTime, GBYTE, MBYTE, TBYTE};
use simnet::NodeId;
use std::cell::Cell;
use std::rc::Rc;
use workloads::{accessed_fraction, nvo_queries, Phase};

/// Scaled-down NVO: 2 TB archive (1/25 of the real 50 TB), 400 queries.
const DATASET: u64 = 2 * TBYTE;
const QUERIES: u32 = 400;

fn build() -> (Sim<GfsWorld>, GfsWorld, NodeId, NodeId) {
    let mut b = WorldBuilder::new(21);
    let archive = b.topo().node("sdsc-archive");
    let observatory = b.topo().node("remote-site");
    b.topo().duplex_link(
        archive,
        observatory,
        Bandwidth::gbit(10.0).scaled(0.94),
        SimDuration::from_millis(30),
        "wan",
    );
    b.cluster("nvo");
    let (sim, w) = b.build();
    (sim, w, archive, observatory)
}

fn main() {
    let mut rng = det_rng(5, "nvo-queries");
    let wl = nvo_queries(&mut rng, QUERIES, DATASET, 10 * MBYTE, 500 * MBYTE);
    let frac = accessed_fraction(&wl, DATASET);
    println!(
        "NVO query campaign: {QUERIES} queries, {:.1} GB touched of {:.1} TB ({:.2}%)",
        wl.read_bytes() as f64 / GBYTE as f64,
        DATASET as f64 / TBYTE as f64,
        frac * 100.0
    );

    // ---------------- Strategy A: direct GFS partial access -----------
    let (mut sim, mut w, archive, site) = build();
    let t = Rc::new(Cell::new(0u64));
    run_queries(&mut sim, &mut w, archive, site, wl.phases.clone(), t.clone());
    sim.run(&mut w);
    let gfs_secs = SimTime::from_nanos(t.get()).as_secs_f64();
    println!("A) Global File System, query in place: {gfs_secs:>10.1} s");

    // ---------------- Strategy B: GridFTP staging ---------------------
    let (mut sim, mut w, archive, site) = build();
    let t = Rc::new(Cell::new(0u64));
    let t2 = t.clone();
    let spec = TransferSpec::new(archive, site, DATASET)
        .with_streams(8)
        .with_window(32 * MBYTE);
    gridftp::transfer(&mut sim, &mut w, spec, move |sim, _w| {
        t2.set(sim.now().as_nanos())
    });
    sim.run(&mut w);
    let stage_secs = SimTime::from_nanos(t.get()).as_secs_f64();
    // Local queries after staging: 2 GB/s local array.
    let local_secs = wl.read_bytes() as f64 / (2.0 * GBYTE as f64);
    println!(
        "B) GridFTP stage-then-query:           {:>10.1} s  ({stage_secs:.0} s staging + {local_secs:.0} s local)",
        stage_secs + local_secs
    );
    println!(
        "-> staging penalty: {:.0}x; and every additional site pays it again,",
        (stage_secs + local_secs) / gfs_secs
    );
    println!("   while the GFS copy is shared (\"updates, data integrity, backups ...");
    println!("   handled in a much more satisfactory way\", paper section 5).");
}

/// Run ReadAt queries sequentially over the WAN as windowed streams.
fn run_queries(
    sim: &mut Sim<GfsWorld>,
    w: &mut GfsWorld,
    archive: NodeId,
    site: NodeId,
    mut phases: Vec<Phase>,
    done_at: Rc<Cell<u64>>,
) {
    let Some(phase) = phases.first().cloned() else {
        done_at.set(sim.now().as_nanos());
        return;
    };
    phases.remove(0);
    match phase {
        Phase::ReadAt { bytes, .. } | Phase::Read { bytes } => {
            let spec = StreamSpec::read(site, vec![archive], bytes).with_window(64 * MBYTE);
            run_stream(sim, w, spec, move |sim, w| {
                run_queries(sim, w, archive, site, phases, done_at);
            });
        }
        Phase::Compute(d) => {
            sim.after(d, move |sim, w| {
                run_queries(sim, w, archive, site, phases, done_at)
            });
        }
        Phase::Write { .. } => unreachable!("NVO workload is read-only"),
    }
}
